#ifndef BULKDEL_CORE_DATABASE_H_
#define BULKDEL_CORE_DATABASE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/catalog.h"
#include "core/report.h"
#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "plan/planner.h"
#include "recovery/log_manager.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "txn/lock_manager.h"
#include "util/result.h"

namespace bulkdel {

class ExecContext;

/// Which protocol concurrent updaters use while indices are off-line during
/// a bulk delete (paper §3.1). kNone runs the statement fully exclusively.
enum class ConcurrencyProtocol { kNone, kSideFile, kDirectPropagation };

/// Which durable medium backs the page store and the WAL.
///  * kSim: in-memory page vector + in-memory WAL image, timed by the
///    simulated DiskModel — deterministic, host-independent (the paper
///    figures' backend).
///  * kFile: real files in DatabaseOptions::path (pages.db + wal.log), with
///    fsync barriers — wall-clock numbers and true crash/reopen semantics.
/// The simulated I/O charge sequence is identical on both: the DiskModel
/// accounting runs before the backing-specific data movement, never after.
enum class StorageBackend { kSim, kFile };

struct DatabaseOptions {
  /// The experiment's "available main memory": sizes the buffer pool and
  /// bounds sorting / hash tables (the paper varies this 2–10 MB).
  size_t memory_budget_bytes = 5ull << 20;
  DiskModel disk_model;
  ReorgMode reorg = ReorgMode::kFreeAtEmpty;
  ConcurrencyProtocol concurrency = ConcurrencyProtocol::kNone;
  /// Write the bulk-delete WAL + checkpoints so interrupted statements can be
  /// rolled forward (§3.2). Off for pure benchmarking runs.
  bool enable_recovery_log = false;
  /// Entries per latch window while processing off-line indices; smaller
  /// values let concurrent updaters interleave more often.
  size_t bulk_chunk_entries = 8192;
  /// kSideFile protocol: ops buffered per side-file shard before the tail is
  /// spilled to scratch pages through the DiskManager (bounds the memory a
  /// long catch-up can pin). Tests shrink this to exercise spilling.
  size_t side_file_spill_ops = 4096;
  /// Worker threads for the phase-DAG scheduler. 1 (the default) executes
  /// phases inline in the canonical serial order — identical behavior to the
  /// historical linear step list. Higher values let independent
  /// per-secondary-index phases overlap; simulated I/O totals stay identical
  /// because attribution classifies sequentiality per phase.
  int exec_threads = 1;
  /// Buffer-pool lock striping: number of sub-pools (see docs/BUFFERPOOL.md).
  /// 0 = auto: 8 shards when exec_threads > 1, a single shard otherwise. The
  /// pool clamps the request so tiny budgets never starve a shard.
  size_t pool_shards = 0;
  /// Leaf read-ahead window in pages: how far ahead the B-tree leaf passes
  /// and the heap table's sorted-RID pass prefetch. 0 disables read-ahead.
  /// Any value keeps simulated I/O identical (see docs/BUFFERPOOL.md).
  size_t readahead_pages = 0;
  /// Batch adjacent dirty eviction victims into one sequential write run.
  /// This changes the simulated write classification (random eviction writes
  /// become sequential), so it is off by default and excluded from the
  /// I/O-identity guarantee.
  bool coalesce_writebacks = false;
  /// Record spans and instants into the process-wide obs::TraceRecorder
  /// (phase begin/end, pool fetch/evict/flush, read-ahead, WAL sync,
  /// checkpoints) for --perfetto-out export. Also unlocks the clock-reading
  /// latency histograms (bp.fetch_ns, latch waits, wal.sync_ns). Off by
  /// default: the instrumented hot paths then pay one relaxed atomic load.
  /// Tracing never touches the DiskManager, so simulated per-phase I/O is
  /// bit-identical with this on or off (see docs/OBSERVABILITY.md).
  bool trace_spans = false;
  /// Test seam: invoked by every PhaseScope right after the phase's begin
  /// timestamp is taken, on the thread that runs the phase. Lets tests
  /// rendezvous concurrently dispatched phases (a single-CPU host gives no
  /// guarantee that two runnable workers interleave within a short phase).
  /// Must not throw; must not block when `exec_threads == 1`.
  std::function<void(const std::string& phase_name)> phase_begin_hook;
  /// Deterministic fault injection (crash-recovery testing): wired through
  /// the disk, buffer-pool, log-sync and executor checkpoint paths. Shared
  /// so the test harness keeps control of arming/disarming. Null in normal
  /// operation — the hot paths then pay a single pointer test.
  std::shared_ptr<FaultInjector> fault_injector;
  /// Durable medium (see StorageBackend). A non-empty `path` implies kFile
  /// for backward compatibility.
  StorageBackend backend = StorageBackend::kSim;
  /// kFile: directory holding the durable files (`pages.db`, `wal.log`, and
  /// the clean-shutdown sidecar); created if missing. Empty = in-memory.
  std::string path;
  /// WAL group commit (file and sim backends alike): concurrent log syncers
  /// coalesce onto one leader flush/fsync per batch. Off = one flush+fsync
  /// per Sync() call (the ablation baseline).
  bool wal_group_commit = true;
  /// Share one derivation (index lookup + RID sort + fetch pass) of the
  /// doomed row set across every foreign key fanning out of a bulk-deleted
  /// table. Off re-runs the derivation per FK — the per-FK-naive baseline
  /// of bench_ablation_cascade. Phase ordering (every RESTRICT before any
  /// CASCADE mutation) is unconditional; only the derivation cost toggles.
  bool fk_shared_sort = true;
  /// Verified-erasure mode: after a statement's End record is durable,
  /// zero the dead tuple bytes in surviving heap pages and overwrite
  /// dropped extent/leaf/scratch pages with zeros (then flush). Off by
  /// default: the extra writes break the simulated-I/O identity the
  /// default configuration guarantees. Covers vertical bulk deletes and
  /// row-path DML; see docs/CONSTRAINTS.md for the durability argument and
  /// the scavenger test.
  bool scrub_deleted_pages = false;
};

/// Predicate class of a bulk delete: an explicit key list (the paper's
/// table D) or a contiguous key range [lo, hi] (BETWEEN). Ranges are
/// first-class — they are *not* expanded into point keys; the predicate is
/// evaluated at execution time inside the statement's exclusive-lock window,
/// so rows entering the range between parse and execution still die.
enum class DeletePredicate : uint8_t { kKeys, kRange };

/// What to delete: the paper's
///   DELETE FROM R WHERE R.A IN (SELECT D.A FROM D)
/// with `table` = R, `key_column` = A and `keys` = the contents of D —
/// or, with `predicate == kRange`,
///   DELETE FROM R WHERE R.A BETWEEN lo AND hi
/// with `keys` empty and [range_lo, range_hi] carried symbolically.
struct BulkDeleteSpec {
  std::string table;
  std::string key_column;
  DeletePredicate predicate = DeletePredicate::kKeys;
  std::vector<int64_t> keys;
  /// The keys are already sorted ascending (skips the sort phase of merge
  /// plans; the traditional executor still probes them in the given order).
  bool keys_sorted = false;
  /// Inclusive bounds, meaningful when predicate == kRange. An inverted
  /// range (lo > hi) is empty and deletes zero rows, not an error.
  int64_t range_lo = 0;
  int64_t range_hi = 0;

  bool is_range() const { return predicate == DeletePredicate::kRange; }
  bool range_empty() const { return is_range() && range_lo > range_hi; }
};

/// The database façade: storage + catalog + planner + executors.
///
/// Typical use:
///   auto db = Database::Create(opts).TakeValue();
///   db->CreateTable("R", schema);
///   db->CreateIndex("R", "A", {.unique = true});
///   ... load ...
///   auto report = db->BulkDelete(spec, Strategy::kOptimizer);
class Database {
 public:
  static Result<std::unique_ptr<Database>> Create(DatabaseOptions options);

  /// Reopens an existing file-backed database from `options.path` (which
  /// must name a directory a previous Create/Close or crashed process left
  /// behind): scans the WAL, loads the catalog and rolls any interrupted
  /// bulk delete forward — the restart path of §3.2, against real files.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  /// Clean shutdown (file backend): checkpoints, fsyncs the page file and
  /// writes the clean-shutdown sidecar so a later Open restores the free
  /// list. No-op beyond the checkpoint for the sim backend.
  Status Close();

  /// The effective durable medium (kFile if `options.path` is set).
  StorageBackend storage_backend() const {
    return options_.path.empty() ? StorageBackend::kSim : StorageBackend::kFile;
  }

  // -- DDL ------------------------------------------------------------------
  Result<TableDef*> CreateTable(const std::string& name, const Schema& schema);
  Result<IndexDef*> CreateIndex(const std::string& table,
                                const std::string& column,
                                IndexOptions options = {},
                                bool clustered = false);
  Status DropIndex(const std::string& table, const std::string& column);

  /// FOREIGN KEY child(column) REFERENCES parent(column) with RESTRICT or
  /// CASCADE semantics. Validates existing data (every child value must
  /// have a parent row). The parent column must carry a unique index.
  Status AddForeignKey(const std::string& child_table,
                       const std::string& child_column,
                       const std::string& parent_table,
                       const std::string& parent_column,
                       FkAction action = FkAction::kRestrict);
  TableDef* GetTable(const std::string& name) {
    return catalog_->GetTable(name);
  }
  IndexDef* GetIndex(const std::string& table, const std::string& column) {
    return catalog_->GetIndex(table, column);
  }

  // -- DML (record-at-a-time, index-maintaining, concurrency-aware) ---------
  Result<Rid> InsertRow(const std::string& table,
                        const std::vector<int64_t>& int_values);
  Status DeleteRow(const std::string& table, const Rid& rid);
  Result<std::vector<int64_t>> GetRow(const std::string& table,
                                      const Rid& rid);

  // -- Bulk delete ------------------------------------------------------------
  Result<BulkDeleteReport> BulkDelete(const BulkDeleteSpec& spec,
                                      Strategy strategy);
  /// The plan the given strategy would run, without executing it.
  Result<BulkDeletePlan> ExplainBulkDelete(const BulkDeleteSpec& spec,
                                           Strategy strategy);

  /// Bulk UPDATE via bulk delete + re-insert on the affected index (§1's
  /// Emp.salary example): sets `set_column` += delta for every row whose
  /// `filter_column` lies in [lo, hi].
  Result<BulkDeleteReport> BulkUpdateColumn(const std::string& table,
                                            const std::string& set_column,
                                            int64_t delta,
                                            const std::string& filter_column,
                                            int64_t lo, int64_t hi);

  // -- Maintenance / introspection -------------------------------------------
  /// Flushes everything (pages, metas, catalog) and syncs the log.
  Status Checkpoint();
  /// Structural validation of every table and index, plus cross-checks that
  /// each index holds exactly one entry per (indexed column, live row).
  Status VerifyIntegrity();

  /// Crash testing: discard all volatile state (buffer pool, catalog cache,
  /// un-synced log tail), then reopen from disk and run recovery, finishing
  /// any interrupted bulk delete forward.
  Status SimulateCrashAndRecover();

  /// Executor-internal (§3.1): marks `bd_id` as the bulk delete whose WAL
  /// covers concurrent updater DML from now on (0 clears). While set,
  /// InsertRow/DeleteRow write kUpdaterRow records before mutating.
  void SetUpdaterLoggingId(uint64_t bd_id) {
    active_bd_id_.store(bd_id, std::memory_order_release);
  }

  /// Makes the next bulk delete fail with kAborted when it reaches the named
  /// phase ("sort-keys", "index:R.A", "table", ...; empty = disabled). The
  /// injected failure happens *before* the phase's checkpoint. Thread-safe:
  /// phases may check from scheduler worker threads.
  void SetCrashPoint(const std::string& phase) {
    std::lock_guard<std::mutex> lock(crash_point_mu_);
    crash_point_ = phase;
  }
  Status CheckCrashPoint(const std::string& phase) {
    std::lock_guard<std::mutex> lock(crash_point_mu_);
    if (!crash_point_.empty() && crash_point_ == phase) {
      crash_point_.clear();
      return Status::Aborted("injected crash at phase " + phase);
    }
    return Status::OK();
  }

  FaultInjector* fault_injector() { return options_.fault_injector.get(); }
  /// Fault-site hook for executor-level sites; no-op without an injector.
  Status CheckFault(const char* site, const std::string& detail = {}) {
    FaultInjector* injector = options_.fault_injector.get();
    return injector != nullptr ? injector->Check(site, detail) : Status::OK();
  }

  /// Per-database metric instruments (counters / histograms), wired into the
  /// pool, WAL, disk and executors at Create(). Each statement's report gets
  /// the snapshot delta across its run.
  obs::MetricsRegistry& metrics() { return metrics_; }

  DiskManager& disk() { return *disk_; }
  BufferPool& pool() { return *pool_; }
  Catalog& catalog() { return *catalog_; }
  LockManager& locks() { return *locks_; }
  LogManager& log() { return *log_; }
  const DatabaseOptions& options() const { return options_; }

  /// Planner inputs derived from live statistics.
  PlannerInput MakePlannerInput(TableDef* table, IndexDef* key_index,
                                uint64_t n_delete, bool keys_sorted) const;

  /// Internal entry points used by the constraint machinery to thread the
  /// set of tables currently being cascaded through (cycle detection).
  Result<BulkDeleteReport> BulkDeleteWithCascadePath(
      const BulkDeleteSpec& spec, Strategy strategy,
      std::set<std::string>* cascade_path);
  Status DeleteRowWithCascadePath(const std::string& table, const Rid& rid,
                                  std::set<std::string>* cascade_path);

 private:
  explicit Database(DatabaseOptions options);

  /// Runs one bulk delete — plan, executor dispatch, backend/plan fill —
  /// with NO foreign-key processing, against the caller's ExecContext.
  /// Phase B of the two-phase cascade engine executes child legs and the
  /// parent delete through here.
  Result<BulkDeleteReport> ExecuteBulkDeletePlanned(ExecContext* ctx,
                                                    const BulkDeleteSpec& spec,
                                                    Strategy strategy);

  /// Deletes one row (heap + indices + WAL), skipping FK processing: the
  /// Phase-B executor of planned row cascades. `missing_ok` tolerates RIDs
  /// already removed by an overlapping cascade leg (diamond fan-out).
  Status DeleteRowNoFk(const std::string& table, const Rid& rid,
                       bool missing_ok);

  /// Builds and wires the storage stack (disk, WAL, pool, catalog, locks,
  /// fault injector, metrics, pre-writeback hook) against the configured
  /// backend. `truncate` starts fresh files; false reopens existing ones.
  /// Shared by Create, Open and the file-backed crash-reopen path.
  Status WireStorage(bool truncate);

  Status ApplyIndexInsert(TableDef* table, IndexDef* index, int64_t key,
                          const Rid& rid);
  Status ApplyIndexDelete(TableDef* table, IndexDef* index, int64_t key,
                          const Rid& rid);
  /// Side-file protocol: admit through the epoch gate and append, with the
  /// fault site + WAL diagnostics. Returns true if the op was absorbed by
  /// the side-file (status in *status); false = index is no longer in
  /// side-file mode, caller should apply directly.
  bool TrySideFileAppend(IndexDef* index, const SideFileOp& op,
                         Status* status);
  /// kUpdaterRow bookkeeping: the id of the bulk delete whose WAL covers
  /// concurrent updater DML right now (0 = none; set around the §3.1
  /// off-line window by the vertical executor when logging is on).
  uint64_t updater_logging_id() const {
    return options_.enable_recovery_log
               ? active_bd_id_.load(std::memory_order_acquire)
               : 0;
  }
  /// Returns kAborted once the fault injector has tripped: a dead process
  /// must not keep acknowledging updater DML.
  Status CheckAlive() const {
    FaultInjector* injector = options_.fault_injector.get();
    if (injector != nullptr && injector->tripped()) {
      return Status::Aborted("process dead (injected fault tripped)");
    }
    return Status::OK();
  }
  static uint32_t HeapPageTuplesPerPage(TableDef* table);

  DatabaseOptions options_;
  /// Declared before the storage objects that cache instrument pointers so it
  /// outlives them on destruction.
  obs::MetricsRegistry metrics_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<LogManager> log_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<LockManager> locks_;
  std::mutex crash_point_mu_;
  std::string crash_point_;
  /// Serializes whole bulk-delete statements (see BulkDelete()); the §3.1
  /// concurrency protocols admit record-at-a-time DML during a statement,
  /// not a second statement.
  std::mutex bulk_delete_statement_mu_;
  /// Bulk delete currently holding indices off-line with recovery logging
  /// on; gates the kUpdaterRow WAL path in InsertRow/DeleteRow.
  std::atomic<uint64_t> active_bd_id_{0};
  /// Side-file instruments (resolved at Create()).
  obs::Counter* sidefile_appends_counter_ = nullptr;
  obs::Counter* sidefile_spill_pages_counter_ = nullptr;
};

}  // namespace bulkdel

#endif  // BULKDEL_CORE_DATABASE_H_

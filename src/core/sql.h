#ifndef BULKDEL_CORE_SQL_H_
#define BULKDEL_CORE_SQL_H_

#include <string>

#include "core/database.h"
#include "util/result.h"

namespace bulkdel {

namespace obs {
class SlowQueryLog;
}  // namespace obs

/// Minimal SQL front end for the statement class the paper studies:
///
///   DELETE FROM <table> WHERE <col> IN (<int literal>, ...)
///   DELETE FROM <table> WHERE <col> IN (SELECT <col2> FROM <table2>)
///   DELETE FROM <table> WHERE <col> BETWEEN <lo> AND <hi>
///
/// The IN-subquery form is the paper's running example (table D holds the
/// keys of the records to delete); the subquery is evaluated as a scan of
/// the referenced table projecting <col2>. BETWEEN is a first-class range
/// predicate: the bounds are carried symbolically in the spec
/// (DeletePredicate::kRange) for the planner's range plans — leaf-run and
/// extent-drop passes — never expanded into a point-key list.
/// Keywords are case-insensitive; identifiers are case-sensitive.
///
/// `max_keys` bounds the delete list however it is produced (IN-list
/// literals, subquery extraction): one more key than the bound aborts the
/// parse with kResourceExhausted. 0 = unbounded. Ranges are deliberately
/// exempt — a two-literal BETWEEN is O(1) to parse and plan no matter how
/// many rows it covers. Network sessions always pass a bound so
/// wire-delivered garbage cannot turn into an allocation storm
/// (docs/SERVER.md).
Result<BulkDeleteSpec> ParseBulkDelete(Database* db,
                                       const std::string& statement,
                                       size_t max_keys = 0);

/// Parses and executes in one step.
Result<BulkDeleteReport> ExecuteSql(Database* db, const std::string& statement,
                                    Strategy strategy = Strategy::kOptimizer);

/// Per-connection statement context. Each network session (and each shell)
/// owns one: statement execution itself is stateless against the shared
/// Database, but the session carries the client's strategy choice, the
/// parser's delete-list bound and running counters. Not thread-safe — a
/// session belongs to exactly one connection thread.
struct SqlSession {
  /// Strategy for DELETE/EXPLAIN statements; `SET STRATEGY <name>` rebinds.
  Strategy strategy = Strategy::kOptimizer;
  /// Bound handed to ParseBulkDelete (0 = unbounded). The server default
  /// keeps a hostile IN-list from exhausting memory before planning starts.
  size_t max_delete_keys = 1u << 20;
  /// Statements successfully executed through this session.
  uint64_t statements = 0;
  /// obs::StatementRegistry id this session is registered under, or 0 for
  /// anonymous sessions (embedded shell, tests): every statement still rows
  /// in sys.statements, but sys.sessions lists registered sessions only.
  uint64_t session_id = 0;
  /// Shared slow-query sink (owned by the server; null = capture off).
  /// Statements whose host latency exceeds the sink's threshold append one
  /// JSONL record (docs/OBSERVABILITY.md).
  obs::SlowQueryLog* slow_log = nullptr;
};

/// General statement dispatcher for the interactive shell, scripts and the
/// network server (src/net). Supports, in addition to the DELETE forms above:
///
///   CREATE TABLE <t> (<col> INT, ..., <col> CHAR(<n>))
///   CREATE [UNIQUE] INDEX ON <t> (<col>) [CLUSTERED] [PRIORITY <p>]
///   DROP INDEX ON <t> (<col>)
///   INSERT INTO <t> VALUES (<int>, ...)
///   SELECT COUNT(*) FROM <t> [WHERE <col> BETWEEN <lo> AND <hi>]
///   SELECT * FROM sys.<name>     (read-only virtual tables, see below)
///   EXPLAIN DELETE FROM ...      (prints the chosen plan, runs nothing)
///   SET STRATEGY <name>          (optimizer, vertical-sort-merge, ...)
///   SHOW STRATEGY
///   SHOW METRICS                 (sugar over SELECT * FROM sys.metrics)
///   SHOW SESSIONS                (sugar over SELECT * FROM sys.sessions)
///
/// Virtual tables (docs/OBSERVABILITY.md) expose the live observability
/// plane to ordinary SELECTs over the wire: `sys.metrics` (every registered
/// counter/gauge plus histogram summaries), `sys.histograms` (one row per
/// populated log2 bucket), `sys.sessions` (connected sessions from the
/// global StatementRegistry) and `sys.statements` (in-flight statements
/// with their current executor phase and live metrics delta, plus recently
/// finished ones). They are read-only snapshots of in-memory state: no
/// table locks, no DiskManager I/O. Unknown sys.* names are kNotFound.
///
/// Every statement executed through a session registers in the global
/// obs::StatementRegistry for its duration; statements slower than the
/// session's slow-query threshold (if configured) append a JSONL record.
/// Returns a human-readable result line (row counts, plan text, report
/// summary). Reads take the table's shared lock and the heap/index latches,
/// so sessions on different threads may execute concurrently against one
/// Database.
Result<std::string> ExecuteStatement(Database* db, SqlSession* session,
                                     const std::string& statement);

/// Single-shot convenience: a throwaway unbounded session with `strategy`.
Result<std::string> ExecuteStatement(Database* db,
                                     const std::string& statement,
                                     Strategy strategy = Strategy::kOptimizer);

}  // namespace bulkdel

#endif  // BULKDEL_CORE_SQL_H_

#ifndef BULKDEL_CORE_SQL_H_
#define BULKDEL_CORE_SQL_H_

#include <string>

#include "core/database.h"
#include "util/result.h"

namespace bulkdel {

/// Minimal SQL front end for the statement class the paper studies:
///
///   DELETE FROM <table> WHERE <col> IN (<int literal>, ...)
///   DELETE FROM <table> WHERE <col> IN (SELECT <col2> FROM <table2>)
///   DELETE FROM <table> WHERE <col> BETWEEN <lo> AND <hi>
///
/// The IN-subquery form is the paper's running example (table D holds the
/// keys of the records to delete); the subquery is evaluated as a scan of
/// the referenced table projecting <col2>. BETWEEN extracts the key list
/// through an index range scan when one exists, else a table scan.
/// Keywords are case-insensitive; identifiers are case-sensitive.
Result<BulkDeleteSpec> ParseBulkDelete(Database* db,
                                       const std::string& statement);

/// Parses and executes in one step.
Result<BulkDeleteReport> ExecuteSql(Database* db, const std::string& statement,
                                    Strategy strategy = Strategy::kOptimizer);

/// General statement dispatcher for the interactive shell and scripts.
/// Supports, in addition to the DELETE forms above:
///
///   CREATE TABLE <t> (<col> INT, ..., <col> CHAR(<n>))
///   CREATE [UNIQUE] INDEX ON <t> (<col>) [CLUSTERED] [PRIORITY <p>]
///   INSERT INTO <t> VALUES (<int>, ...)
///   SELECT COUNT(*) FROM <t> [WHERE <col> BETWEEN <lo> AND <hi>]
///   EXPLAIN DELETE FROM ...      (prints the chosen plan, runs nothing)
///
/// Returns a human-readable result line (row counts, plan text, report
/// summary).
Result<std::string> ExecuteStatement(Database* db,
                                     const std::string& statement,
                                     Strategy strategy = Strategy::kOptimizer);

}  // namespace bulkdel

#endif  // BULKDEL_CORE_SQL_H_

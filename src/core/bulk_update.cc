// Bulk UPDATE as bulk delete + bulk re-insert on the affected index — the
// paper's §1 example: "increasing the salary of above-average employees
// involves carrying out a bulk delete (and bulk insert) on the Emp.salary
// index". Only the index on the updated column is touched; the other indices
// key on unchanged values and the RIDs do not move.

#include <algorithm>

#include "core/executors.h"
#include "sort/external_sort.h"
#include "table/heap_page.h"

namespace bulkdel {

Result<BulkDeleteReport> ExecuteBulkUpdate(ExecContext* ctx,
                                           const std::string& table_name,
                                           const std::string& set_column,
                                           int64_t delta,
                                           const std::string& filter_column,
                                           int64_t lo, int64_t hi) {
  Database* db = ctx->db();
  TableDef* table = db->GetTable(table_name);
  if (table == nullptr) return Status::NotFound("no table " + table_name);
  const Schema& schema = *table->schema;
  int set_col = schema.FindColumn(set_column);
  int filter_col = schema.FindColumn(filter_column);
  if (set_col < 0 || filter_col < 0) {
    return Status::NotFound("unknown column in bulk update");
  }
  IndexDef* set_index = table->FindIndexOnColumn(set_col);

  BulkDeleteReport report;
  report.strategy_used = Strategy::kVerticalSortMerge;
  Stopwatch total;

  db->locks().LockExclusive(table_name);
  Status status = [&]() -> Status {
    // 1. Find affected rows (scan; an index on filter_column could narrow
    //    this, but the paper's point is the index maintenance that follows).
    std::vector<KeyRid> old_entries;  // (old set_column value, rid)
    {
      PhaseScope scope(ctx, "collect");
      BULKDEL_RETURN_IF_ERROR(
          table->table->Scan([&](const Rid& rid, const char* tuple) {
            int64_t f = schema.GetInt(tuple, static_cast<size_t>(filter_col));
            if (f >= lo && f <= hi) {
              old_entries.emplace_back(
                  schema.GetInt(tuple, static_cast<size_t>(set_col)), rid);
            }
            return Status::OK();
          }));
      scope.set_items(old_entries.size());
    }

    // 2. Bulk delete the stale index entries (one merging leaf pass).
    if (set_index != nullptr) {
      PhaseScope scope(ctx, "index-delete", "collect");
      std::vector<KeyRid> doomed = old_entries;
      BULKDEL_RETURN_IF_ERROR(SortKeyRids(
          &db->disk(), db->options().memory_budget_bytes, &doomed));
      BtreeBulkDeleteStats stats;
      BULKDEL_RETURN_IF_ERROR(set_index->tree->BulkDeleteSortedEntries(
          doomed, db->options().reorg, &stats));
      report.index_entries_deleted += stats.entries_deleted;
      scope.set_items(stats.entries_deleted);
    }

    // 3. Apply the update to the table in physical (RID) order.
    {
      PhaseScope scope(ctx, "table-update", "collect");
      std::vector<KeyRid> by_rid = old_entries;
      std::sort(by_rid.begin(), by_rid.end(), OrderByRid());
      std::vector<char> tuple(schema.tuple_size());
      for (const KeyRid& e : by_rid) {
        BULKDEL_RETURN_IF_ERROR(table->table->Get(e.rid, tuple.data()));
        schema.SetInt(tuple.data(), static_cast<size_t>(set_col),
                      e.key + delta);
        // Fixed-size tuples: delete + re-insert into the same slot would
        // churn the RID, so update in place through the table's page
        // interface.
        BULKDEL_RETURN_IF_ERROR(
            table->table->UpdateInPlace(e.rid, tuple.data()));
      }
      report.rows_deleted = by_rid.size();  // rows *updated*
      scope.set_items(by_rid.size());
    }

    // 4. Bulk re-insert the new index entries in sorted order.
    if (set_index != nullptr) {
      PhaseScope scope(ctx, "index-insert", "table-update");
      std::vector<KeyRid> fresh;
      fresh.reserve(old_entries.size());
      for (const KeyRid& e : old_entries) {
        fresh.emplace_back(e.key + delta, e.rid);
      }
      BULKDEL_RETURN_IF_ERROR(SortKeyRids(
          &db->disk(), db->options().memory_budget_bytes, &fresh));
      BULKDEL_RETURN_IF_ERROR(set_index->tree->BulkInsertSorted(fresh));
      scope.set_items(fresh.size());
    }

    PhaseScope scope(ctx, "finalize");
    BULKDEL_RETURN_IF_ERROR(table->table->FlushMeta());
    for (auto& index : table->indices) {
      BULKDEL_RETURN_IF_ERROR(index->tree->FlushMeta());
    }
    return db->pool().FlushAll();
  }();
  db->locks().UnlockExclusive(table_name);
  BULKDEL_RETURN_IF_ERROR(status);

  report.phases = ctx->TakePhases();
  report.io = ctx->AttributedTotal();
  report.wall_micros = total.ElapsedMicros();
  return report;
}

}  // namespace bulkdel

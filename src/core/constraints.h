#ifndef BULKDEL_CORE_CONSTRAINTS_H_
#define BULKDEL_CORE_CONSTRAINTS_H_

#include <set>
#include <string>
#include <vector>

#include "core/database.h"

namespace bulkdel {

/// Set-oriented referential-integrity processing for bulk deletes (§2.1):
/// constraints are checked (and cascades executed) *before* the parent
/// table or its indices are touched, "so that no work needs to be undone if
/// an integrity constraint fails".
///
/// For every FK referencing the parent table: collect the doomed rows'
/// referenced-column values (directly from the delete list when the FK
/// references the delete key column, otherwise via one read-only merge
/// lookup + table fetch), then either merge-count references in the child
/// (RESTRICT — any hit fails the statement) or recursively bulk delete the
/// referencing child rows (CASCADE).
///
/// `cascade_path` carries the tables already being deleted up-stack to
/// reject cyclic cascades. `cascaded_rows` accumulates child deletions.
Status ProcessForeignKeysForBulkDelete(Database* db, TableDef* table,
                                       const BulkDeleteSpec& spec,
                                       Strategy strategy,
                                       std::set<std::string>* cascade_path,
                                       uint64_t* cascaded_rows);

/// Row-level FK checks for DML. Verifies every FK of `child_table` is
/// satisfied by `tuple`'s values (the parent row must exist).
Status CheckChildInsert(Database* db, TableDef* child_table,
                        const char* tuple);

/// Row-level FK processing when one parent row dies: RESTRICT fails if
/// references exist; CASCADE recursively deletes referencing child rows.
Status ProcessParentRowDelete(Database* db, TableDef* parent_table,
                              const char* tuple,
                              std::set<std::string>* cascade_path);

}  // namespace bulkdel

#endif  // BULKDEL_CORE_CONSTRAINTS_H_

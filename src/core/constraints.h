#ifndef BULKDEL_CORE_CONSTRAINTS_H_
#define BULKDEL_CORE_CONSTRAINTS_H_

#include <set>
#include <string>
#include <vector>

#include "core/database.h"

namespace bulkdel {

/// Set-oriented referential-integrity processing for bulk deletes, done in
/// two strictly separated phases (§2.1: "so that no work needs to be
/// undone"):
///
///   Phase A (read-only planning) — derive the doomed rows' referenced
///   column values *once* (one index lookup + one RID sort + one fetch pass
///   shared across every FK that fans out of the table), evaluate **every**
///   RESTRICT — including RESTRICTs reached transitively through CASCADE
///   children — against the pre-statement state, and only then emit a
///   cascade plan. A RESTRICT violation therefore fails the statement
///   before any mutation, regardless of the catalog order of the FKs.
///
///   Phase B (execution) — the caller runs the plan's per-child-table bulk
///   deletes (deepest descendants first, so a child is empty of its own
///   dependents before its rows die), then deletes the parent rows.
///
/// `cascade_path` carries the tables already being deleted up-stack to
/// reject cyclic cascades. See docs/CONSTRAINTS.md.

/// One CASCADE leg of a planned multi-table delete: a vertical bulk delete
/// of `table` keyed on `key_column` with the (sorted, deduplicated) doomed
/// parent values as the delete list.
struct CascadeChildDelete {
  std::string table;
  std::string key_column;
  std::vector<int64_t> keys;
};

/// The full fan-out of one bulk delete, flattened deepest-first: executing
/// `children` in order, then the parent delete, preserves the old recursive
/// execution order exactly (children were always processed before their
/// parents' rows died).
struct CascadePlan {
  std::vector<CascadeChildDelete> children;

  /// Total child keys across all legs (phase-trace item count).
  uint64_t TotalKeys() const {
    uint64_t n = 0;
    for (const CascadeChildDelete& c : children) n += c.keys.size();
    return n;
  }
};

/// Phase A for a bulk delete: read-only. On success `plan` holds every
/// CASCADE leg (deepest-first); any RESTRICT violation (direct or reached
/// through a CASCADE chain) or cascade cycle fails with nothing mutated.
/// With `DatabaseOptions::fk_shared_sort` (the default) the doomed RID set
/// of each table is derived and sorted once and shared across all of that
/// table's FKs; without it the derivation re-runs per FK (the ablation
/// baseline).
Status PlanForeignKeysForBulkDelete(Database* db, TableDef* table,
                                    const BulkDeleteSpec& spec,
                                    std::set<std::string>* cascade_path,
                                    CascadePlan* plan);

/// Row-level FK checks for DML. Verifies every FK of `child_table` is
/// satisfied by `tuple`'s values (the parent row must exist).
Status CheckChildInsert(Database* db, TableDef* child_table,
                        const char* tuple);

/// One CASCADE leg of a planned row delete: the child rows (by RID) doomed
/// in `table`.
struct RowCascadeTarget {
  std::string table;
  std::vector<Rid> rids;
};

/// Phase A for a single-row delete: read-only. Collects every transitively
/// referencing child row into `targets` (deepest-first) and fails on any
/// RESTRICT reference or cascade cycle with nothing mutated. Unindexed
/// child columns cost one hash-probed scan per child table per statement
/// (not one scan per referencing value).
Status PlanParentRowDelete(Database* db, TableDef* parent_table,
                           const char* tuple,
                           std::set<std::string>* cascade_path,
                           std::vector<RowCascadeTarget>* targets);

}  // namespace bulkdel

#endif  // BULKDEL_CORE_CONSTRAINTS_H_

#ifndef BULKDEL_CORE_REPORT_H_
#define BULKDEL_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "storage/disk_manager.h"

namespace bulkdel {

/// Per-phase measurement of one bulk-delete execution.
struct PhaseStats {
  std::string name;
  IoStats io;            ///< I/O performed by this phase
  int64_t wall_micros = 0;
  uint64_t items = 0;    ///< records/entries processed by this phase

  double simulated_seconds() const {
    return static_cast<double>(io.simulated_micros) * 1e-6;
  }
};

/// Result of Database::BulkDelete. The headline metric is
/// `simulated_seconds()` — elapsed time under the 2001-era DiskModel — which
/// is what the paper's figures plot; raw I/O counters and host wall time are
/// included for completeness.
struct BulkDeleteReport {
  Strategy strategy_used = Strategy::kVerticalSortMerge;
  uint64_t rows_deleted = 0;
  uint64_t index_entries_deleted = 0;
  /// Child rows removed by CASCADE foreign keys (recursively).
  uint64_t cascaded_rows = 0;
  std::vector<PhaseStats> phases;
  IoStats io;
  int64_t wall_micros = 0;
  std::string plan_explain;

  double simulated_seconds() const {
    return static_cast<double>(io.simulated_micros) * 1e-6;
  }
  double simulated_minutes() const { return simulated_seconds() / 60.0; }

  /// Multi-line human-readable summary.
  std::string ToString() const;
};

}  // namespace bulkdel

#endif  // BULKDEL_CORE_REPORT_H_

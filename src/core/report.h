#ifndef BULKDEL_CORE_REPORT_H_
#define BULKDEL_CORE_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "plan/plan.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "util/result.h"

namespace bulkdel {

/// Per-phase measurement of one bulk-delete execution.
///
/// Phases may overlap when `DatabaseOptions::exec_threads > 1`: the structured
/// trace fields (begin/end relative to statement start, executing thread,
/// parent phase) let tools reconstruct the schedule. I/O is attributed
/// exactly per phase via DiskManager::AttributionScope, so concurrent phases
/// never steal each other's page counts.
struct PhaseStats {
  std::string name;
  IoStats io;            ///< I/O performed by this phase (attributed exactly)
  int64_t wall_micros = 0;
  uint64_t items = 0;    ///< records/entries processed by this phase

  // Structured trace (all times relative to statement start).
  int64_t begin_micros = 0;
  int64_t end_micros = 0;
  /// Small dense ordinal of the executing thread (0 = statement thread).
  int thread_id = 0;
  /// Name of the enclosing phase, empty at top level.
  std::string parent;

  double simulated_seconds() const {
    return static_cast<double>(io.simulated_micros) * 1e-6;
  }

  /// True if the two phases' [begin, end) wall-clock windows intersect.
  bool OverlapsInTime(const PhaseStats& other) const {
    return begin_micros < other.end_micros && other.begin_micros < end_micros;
  }
};

/// Per-table attribution of one statement's CASCADE fan-out: how many rows
/// one child-table leg of the cascade plan removed. A table cascaded into
/// through more than one FK appears once per leg, in execution (deepest-
/// first) order.
struct CascadeTableRows {
  std::string table;
  uint64_t rows = 0;

  friend bool operator==(const CascadeTableRows& a,
                         const CascadeTableRows& b) {
    return a.table == b.table && a.rows == b.rows;
  }
};

/// Result of Database::BulkDelete. The headline metric is
/// `simulated_seconds()` — elapsed time under the 2001-era DiskModel — which
/// is what the paper's figures plot; raw I/O counters and host wall time are
/// included for completeness.
struct BulkDeleteReport {
  Strategy strategy_used = Strategy::kVerticalSortMerge;
  uint64_t rows_deleted = 0;
  uint64_t index_entries_deleted = 0;
  /// Child rows removed by CASCADE foreign keys (recursively).
  uint64_t cascaded_rows = 0;
  /// Per-child-table breakdown of `cascaded_rows`, one entry per cascade
  /// leg in execution order. Empty when nothing cascaded.
  std::vector<CascadeTableRows> cascade_tables;
  std::vector<PhaseStats> phases;
  IoStats io;
  /// Buffer-pool activity during this statement (delta across the run).
  BufferPoolStats pool;
  /// Per-shard breakdown of `pool`, in shard-index order. Size equals the
  /// pool's effective shard count.
  std::vector<BufferPoolStats> pool_shards;
  /// Metric deltas across this statement (counters and log2-bucket
  /// histograms from the database's obs::MetricsRegistry). The clock-reading
  /// latency histograms only populate when DatabaseOptions::trace_spans is
  /// on; counters and count-valued histograms always do.
  obs::MetricsSnapshot metrics;
  int64_t wall_micros = 0;
  /// Which durability backend executed the statement: "sim" (in-memory pages
  /// + in-memory WAL image) or "file" (pwrite/fsync page file + on-disk WAL).
  /// Simulated I/O totals are backend-independent; wall_micros is not.
  std::string backend = "sim";
  std::string plan_explain;

  double simulated_seconds() const {
    return static_cast<double>(io.simulated_micros) * 1e-6;
  }
  double simulated_minutes() const { return simulated_seconds() / 60.0; }

  /// Multi-line human-readable summary.
  std::string ToString() const;

  /// Machine-readable trace: the whole report, including every phase with
  /// its structured trace fields, as a single JSON object. FromJson() parses
  /// it back; ToJson/FromJson round-trip all fields exactly.
  std::string ToJson() const;
  static Result<BulkDeleteReport> FromJson(const std::string& json);
};

}  // namespace bulkdel

#endif  // BULKDEL_CORE_REPORT_H_

// BulkDeleteReport rendering: the human-readable summary the examples print
// and the machine-readable JSON trace the benches emit via --trace-out.
// FromJson() exists so tooling (and the phase-trace tests) can round-trip a
// report exactly; parsing rides on util/json (the same dialect tools like
// bulkdel_tracecat read).

#include "core/report.h"

#include <cstdio>

#include "util/json.h"

namespace bulkdel {

std::string BulkDeleteReport::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "BulkDeleteReport strategy=%s rows=%llu index_entries=%llu\n"
                "  simulated time: %.2f s   wall: %.1f ms\n"
                "  io: %lld reads, %lld writes (%lld seq, %lld rand)\n",
                StrategyName(strategy_used),
                static_cast<unsigned long long>(rows_deleted),
                static_cast<unsigned long long>(index_entries_deleted),
                simulated_seconds(),
                static_cast<double>(wall_micros) / 1000.0,
                static_cast<long long>(io.reads),
                static_cast<long long>(io.writes),
                static_cast<long long>(io.sequential_accesses),
                static_cast<long long>(io.random_accesses));
  out += buf;
  for (const CascadeTableRows& c : cascade_tables) {
    std::snprintf(buf, sizeof(buf), "  cascade %-15s rows=%llu\n",
                  c.table.c_str(), static_cast<unsigned long long>(c.rows));
    out += buf;
  }
  for (const PhaseStats& p : phases) {
    std::snprintf(buf, sizeof(buf),
                  "  phase %-16s items=%-8llu sim=%8.3f s  io=%lld/%lld"
                  "  t%d [%lld..%lld us]\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.items),
                  p.simulated_seconds(), static_cast<long long>(p.io.reads),
                  static_cast<long long>(p.io.writes), p.thread_id,
                  static_cast<long long>(p.begin_micros),
                  static_cast<long long>(p.end_micros));
    out += buf;
  }
  return out;
}

namespace {

using json::AppendEscaped;
using JsonValue = json::Value;

void AppendField(std::string* out, const char* key, int64_t value,
                 bool comma = true) {
  *out += '"';
  *out += key;
  *out += "\":";
  *out += std::to_string(value);
  if (comma) *out += ',';
}

void AppendIoStats(std::string* out, const IoStats& io) {
  *out += '{';
  AppendField(out, "reads", io.reads);
  AppendField(out, "writes", io.writes);
  AppendField(out, "sequential_accesses", io.sequential_accesses);
  AppendField(out, "random_accesses", io.random_accesses);
  AppendField(out, "simulated_micros", io.simulated_micros,
              /*comma=*/false);
  *out += '}';
}

void AppendPoolStats(std::string* out, const BufferPoolStats& pool) {
  *out += '{';
  AppendField(out, "hits", pool.hits);
  AppendField(out, "misses", pool.misses);
  AppendField(out, "evictions", pool.evictions);
  AppendField(out, "dirty_writebacks", pool.dirty_writebacks);
  AppendField(out, "prefetched", pool.prefetched);
  AppendField(out, "prefetch_hits", pool.prefetch_hits);
  AppendField(out, "coalesced_writebacks", pool.coalesced_writebacks,
              /*comma=*/false);
  *out += '}';
}

/// One metrics snapshot as {"counters":[{name,value}...],
/// "histograms":[{name,count,sum,buckets:[...]}...]}.
void AppendMetrics(std::string* out, const obs::MetricsSnapshot& metrics) {
  *out += "{\"counters\":[";
  for (size_t i = 0; i < metrics.counters.size(); ++i) {
    if (i > 0) *out += ',';
    *out += "{\"name\":";
    AppendEscaped(out, metrics.counters[i].first);
    *out += ',';
    AppendField(out, "value", metrics.counters[i].second, /*comma=*/false);
    *out += '}';
  }
  *out += "],\"histograms\":[";
  for (size_t i = 0; i < metrics.histograms.size(); ++i) {
    const obs::HistogramSnapshot& h = metrics.histograms[i];
    if (i > 0) *out += ',';
    *out += "{\"name\":";
    AppendEscaped(out, h.name);
    *out += ',';
    AppendField(out, "count", h.count);
    AppendField(out, "sum", h.sum);
    *out += "\"buckets\":[";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) *out += ',';
      *out += std::to_string(h.buckets[b]);
    }
    *out += "]}";
  }
  *out += "]}";
}

obs::MetricsSnapshot MetricsFromJson(const JsonValue& v) {
  obs::MetricsSnapshot metrics;
  if (const JsonValue* counters = v.Find("counters")) {
    for (const JsonValue& cv : counters->array) {
      metrics.counters.emplace_back(cv.StringOr("name"), cv.IntOr("value"));
    }
  }
  if (const JsonValue* histograms = v.Find("histograms")) {
    for (const JsonValue& hv : histograms->array) {
      obs::HistogramSnapshot h;
      h.name = hv.StringOr("name");
      h.count = hv.IntOr("count");
      h.sum = hv.IntOr("sum");
      if (const JsonValue* buckets = hv.Find("buckets")) {
        for (const JsonValue& bv : buckets->array) {
          h.buckets.push_back(bv.integer);
        }
      }
      metrics.histograms.push_back(std::move(h));
    }
  }
  return metrics;
}

IoStats IoStatsFromJson(const JsonValue& v) {
  IoStats io;
  io.reads = v.IntOr("reads");
  io.writes = v.IntOr("writes");
  io.sequential_accesses = v.IntOr("sequential_accesses");
  io.random_accesses = v.IntOr("random_accesses");
  io.simulated_micros = v.IntOr("simulated_micros");
  return io;
}

BufferPoolStats PoolStatsFromJson(const JsonValue& v) {
  BufferPoolStats pool;
  pool.hits = v.IntOr("hits");
  pool.misses = v.IntOr("misses");
  pool.evictions = v.IntOr("evictions");
  pool.dirty_writebacks = v.IntOr("dirty_writebacks");
  pool.prefetched = v.IntOr("prefetched");
  pool.prefetch_hits = v.IntOr("prefetch_hits");
  pool.coalesced_writebacks = v.IntOr("coalesced_writebacks");
  return pool;
}

Result<Strategy> StrategyFromString(const std::string& name) {
  for (Strategy s :
       {Strategy::kTraditional, Strategy::kTraditionalSorted,
        Strategy::kDropCreate, Strategy::kVerticalSortMerge,
        Strategy::kVerticalHash, Strategy::kVerticalPartitionedHash,
        Strategy::kOptimizer}) {
    if (name == StrategyName(s)) return s;
  }
  return Status::InvalidArgument("unknown strategy name: " + name);
}

}  // namespace

std::string BulkDeleteReport::ToJson() const {
  std::string out = "{";
  out += "\"strategy\":";
  AppendEscaped(&out, StrategyName(strategy_used));
  out += ',';
  AppendField(&out, "rows_deleted", static_cast<int64_t>(rows_deleted));
  AppendField(&out, "index_entries_deleted",
              static_cast<int64_t>(index_entries_deleted));
  AppendField(&out, "cascaded_rows", static_cast<int64_t>(cascaded_rows));
  out += "\"cascade_tables\":[";
  for (size_t i = 0; i < cascade_tables.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"table\":";
    AppendEscaped(&out, cascade_tables[i].table);
    out += ',';
    AppendField(&out, "rows", static_cast<int64_t>(cascade_tables[i].rows),
                /*comma=*/false);
    out += '}';
  }
  out += "],";
  AppendField(&out, "wall_micros", wall_micros);
  out += "\"backend\":";
  AppendEscaped(&out, backend);
  out += ',';
  out += "\"io\":";
  AppendIoStats(&out, io);
  out += ",\"pool\":";
  AppendPoolStats(&out, pool);
  out += ",\"pool_shards\":[";
  for (size_t i = 0; i < pool_shards.size(); ++i) {
    if (i > 0) out += ',';
    AppendPoolStats(&out, pool_shards[i]);
  }
  out += "],\"phases\":[";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseStats& p = phases[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    AppendEscaped(&out, p.name);
    out += ',';
    AppendField(&out, "items", static_cast<int64_t>(p.items));
    AppendField(&out, "wall_micros", p.wall_micros);
    AppendField(&out, "begin_micros", p.begin_micros);
    AppendField(&out, "end_micros", p.end_micros);
    AppendField(&out, "thread_id", p.thread_id);
    out += "\"parent\":";
    AppendEscaped(&out, p.parent);
    out += ",\"io\":";
    AppendIoStats(&out, p.io);
    out += '}';
  }
  out += "],\"metrics\":";
  AppendMetrics(&out, metrics);
  out += ",\"plan_explain\":";
  AppendEscaped(&out, plan_explain);
  out += '}';
  return out;
}

Result<BulkDeleteReport> BulkDeleteReport::FromJson(const std::string& json) {
  BULKDEL_ASSIGN_OR_RETURN(JsonValue root, json::Parse(json));
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("report JSON must be an object");
  }
  BulkDeleteReport report;
  BULKDEL_ASSIGN_OR_RETURN(report.strategy_used,
                           StrategyFromString(root.StringOr("strategy")));
  report.rows_deleted = static_cast<uint64_t>(root.IntOr("rows_deleted"));
  report.index_entries_deleted =
      static_cast<uint64_t>(root.IntOr("index_entries_deleted"));
  report.cascaded_rows = static_cast<uint64_t>(root.IntOr("cascaded_rows"));
  if (const JsonValue* cascades = root.Find("cascade_tables")) {
    if (cascades->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument("\"cascade_tables\" must be an array");
    }
    for (const JsonValue& cv : cascades->array) {
      CascadeTableRows c;
      c.table = cv.StringOr("table");
      c.rows = static_cast<uint64_t>(cv.IntOr("rows"));
      report.cascade_tables.push_back(std::move(c));
    }
  }
  report.wall_micros = root.IntOr("wall_micros");
  // Older traces predate the backend field; they were all simulation runs.
  report.backend = root.Find("backend") ? root.StringOr("backend") : "sim";
  report.plan_explain = root.StringOr("plan_explain");
  if (const JsonValue* io = root.Find("io")) {
    report.io = IoStatsFromJson(*io);
  }
  if (const JsonValue* pool = root.Find("pool")) {
    report.pool = PoolStatsFromJson(*pool);
  }
  if (const JsonValue* shards = root.Find("pool_shards")) {
    if (shards->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument("\"pool_shards\" must be an array");
    }
    for (const JsonValue& sv : shards->array) {
      report.pool_shards.push_back(PoolStatsFromJson(sv));
    }
  }
  if (const JsonValue* phases = root.Find("phases")) {
    if (phases->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument("\"phases\" must be an array");
    }
    for (const JsonValue& pv : phases->array) {
      PhaseStats p;
      p.name = pv.StringOr("name");
      p.items = static_cast<uint64_t>(pv.IntOr("items"));
      p.wall_micros = pv.IntOr("wall_micros");
      p.begin_micros = pv.IntOr("begin_micros");
      p.end_micros = pv.IntOr("end_micros");
      p.thread_id = static_cast<int>(pv.IntOr("thread_id"));
      p.parent = pv.StringOr("parent");
      if (const JsonValue* io = pv.Find("io")) {
        p.io = IoStatsFromJson(*io);
      }
      report.phases.push_back(std::move(p));
    }
  }
  if (const JsonValue* metrics = root.Find("metrics")) {
    report.metrics = MetricsFromJson(*metrics);
  }
  return report;
}

}  // namespace bulkdel

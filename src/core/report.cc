// BulkDeleteReport rendering: the human-readable summary the examples print
// and the machine-readable JSON trace the benches emit via --trace-out.
// FromJson() exists so tooling (and the phase-trace tests) can round-trip a
// report exactly; the parser below covers precisely the JSON this file emits
// (objects, arrays, strings with escapes, signed integers).

#include "core/report.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <memory>

namespace bulkdel {

std::string BulkDeleteReport::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "BulkDeleteReport strategy=%s rows=%llu index_entries=%llu\n"
                "  simulated time: %.2f s   wall: %.1f ms\n"
                "  io: %lld reads, %lld writes (%lld seq, %lld rand)\n",
                StrategyName(strategy_used),
                static_cast<unsigned long long>(rows_deleted),
                static_cast<unsigned long long>(index_entries_deleted),
                simulated_seconds(),
                static_cast<double>(wall_micros) / 1000.0,
                static_cast<long long>(io.reads),
                static_cast<long long>(io.writes),
                static_cast<long long>(io.sequential_accesses),
                static_cast<long long>(io.random_accesses));
  out += buf;
  for (const PhaseStats& p : phases) {
    std::snprintf(buf, sizeof(buf),
                  "  phase %-16s items=%-8llu sim=%8.3f s  io=%lld/%lld"
                  "  t%d [%lld..%lld us]\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.items),
                  p.simulated_seconds(), static_cast<long long>(p.io.reads),
                  static_cast<long long>(p.io.writes), p.thread_id,
                  static_cast<long long>(p.begin_micros),
                  static_cast<long long>(p.end_micros));
    out += buf;
  }
  return out;
}

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendField(std::string* out, const char* key, int64_t value,
                 bool comma = true) {
  *out += '"';
  *out += key;
  *out += "\":";
  *out += std::to_string(value);
  if (comma) *out += ',';
}

void AppendIoStats(std::string* out, const IoStats& io) {
  *out += '{';
  AppendField(out, "reads", io.reads);
  AppendField(out, "writes", io.writes);
  AppendField(out, "sequential_accesses", io.sequential_accesses);
  AppendField(out, "random_accesses", io.random_accesses);
  AppendField(out, "simulated_micros", io.simulated_micros,
              /*comma=*/false);
  *out += '}';
}

void AppendPoolStats(std::string* out, const BufferPoolStats& pool) {
  *out += '{';
  AppendField(out, "hits", pool.hits);
  AppendField(out, "misses", pool.misses);
  AppendField(out, "evictions", pool.evictions);
  AppendField(out, "dirty_writebacks", pool.dirty_writebacks);
  AppendField(out, "prefetched", pool.prefetched);
  AppendField(out, "prefetch_hits", pool.prefetch_hits);
  AppendField(out, "coalesced_writebacks", pool.coalesced_writebacks,
              /*comma=*/false);
  *out += '}';
}

// --- Minimal JSON reader (exactly the subset ToJson emits) -----------------

struct JsonValue {
  enum class Kind { kNull, kInt, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  int64_t integer = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  int64_t IntOr(const std::string& key, int64_t fallback = 0) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kInt ? v->integer : fallback;
  }
  std::string StringOr(const std::string& key,
                       const std::string& fallback = "") const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kString ? v->string : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    BULKDEL_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseInt();
    }
    return Status::InvalidArgument("unexpected character in JSON at offset " +
                                   std::to_string(pos_));
  }

  Result<JsonValue> ParseObject() {
    BULKDEL_RETURN_IF_ERROR(Expect('{'));
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      BULKDEL_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      BULKDEL_RETURN_IF_ERROR(Expect(':'));
      BULKDEL_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      v.object.emplace(std::move(key.string), std::move(value));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      BULKDEL_RETURN_IF_ERROR(Expect('}'));
      return v;
    }
  }

  Result<JsonValue> ParseArray() {
    BULKDEL_RETURN_IF_ERROR(Expect('['));
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      BULKDEL_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      v.array.push_back(std::move(item));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      BULKDEL_RETURN_IF_ERROR(Expect(']'));
      return v;
    }
  }

  Result<JsonValue> ParseString() {
    BULKDEL_RETURN_IF_ERROR(Expect('"'));
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        v.string.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("dangling escape in JSON string");
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':
          v.string.push_back('"');
          break;
        case '\\':
          v.string.push_back('\\');
          break;
        case '/':
          v.string.push_back('/');
          break;
        case 'n':
          v.string.push_back('\n');
          break;
        case 'r':
          v.string.push_back('\r');
          break;
        case 't':
          v.string.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("truncated \\u escape");
          }
          int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code += h - 'a' + 10;
            } else if (h >= 'A' && h <= 'F') {
              code += h - 'A' + 10;
            } else {
              return Status::InvalidArgument("bad \\u escape");
            }
          }
          // Control characters only (all ToJson emits); wider code points
          // would need UTF-8 encoding.
          v.string.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape in JSON string");
      }
    }
    BULKDEL_RETURN_IF_ERROR(Expect('"'));
    return v;
  }

  Result<JsonValue> ParseInt() {
    JsonValue v;
    v.kind = JsonValue::Kind::kInt;
    bool negative = false;
    if (text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Status::InvalidArgument("malformed number in JSON");
    }
    uint64_t magnitude = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      magnitude = magnitude * 10 + static_cast<uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    v.integer = negative ? -static_cast<int64_t>(magnitude)
                         : static_cast<int64_t>(magnitude);
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

IoStats IoStatsFromJson(const JsonValue& v) {
  IoStats io;
  io.reads = v.IntOr("reads");
  io.writes = v.IntOr("writes");
  io.sequential_accesses = v.IntOr("sequential_accesses");
  io.random_accesses = v.IntOr("random_accesses");
  io.simulated_micros = v.IntOr("simulated_micros");
  return io;
}

BufferPoolStats PoolStatsFromJson(const JsonValue& v) {
  BufferPoolStats pool;
  pool.hits = v.IntOr("hits");
  pool.misses = v.IntOr("misses");
  pool.evictions = v.IntOr("evictions");
  pool.dirty_writebacks = v.IntOr("dirty_writebacks");
  pool.prefetched = v.IntOr("prefetched");
  pool.prefetch_hits = v.IntOr("prefetch_hits");
  pool.coalesced_writebacks = v.IntOr("coalesced_writebacks");
  return pool;
}

Result<Strategy> StrategyFromString(const std::string& name) {
  for (Strategy s :
       {Strategy::kTraditional, Strategy::kTraditionalSorted,
        Strategy::kDropCreate, Strategy::kVerticalSortMerge,
        Strategy::kVerticalHash, Strategy::kVerticalPartitionedHash,
        Strategy::kOptimizer}) {
    if (name == StrategyName(s)) return s;
  }
  return Status::InvalidArgument("unknown strategy name: " + name);
}

}  // namespace

std::string BulkDeleteReport::ToJson() const {
  std::string out = "{";
  out += "\"strategy\":";
  AppendEscaped(&out, StrategyName(strategy_used));
  out += ',';
  AppendField(&out, "rows_deleted", static_cast<int64_t>(rows_deleted));
  AppendField(&out, "index_entries_deleted",
              static_cast<int64_t>(index_entries_deleted));
  AppendField(&out, "cascaded_rows", static_cast<int64_t>(cascaded_rows));
  AppendField(&out, "wall_micros", wall_micros);
  out += "\"io\":";
  AppendIoStats(&out, io);
  out += ",\"pool\":";
  AppendPoolStats(&out, pool);
  out += ",\"pool_shards\":[";
  for (size_t i = 0; i < pool_shards.size(); ++i) {
    if (i > 0) out += ',';
    AppendPoolStats(&out, pool_shards[i]);
  }
  out += "],\"phases\":[";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseStats& p = phases[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    AppendEscaped(&out, p.name);
    out += ',';
    AppendField(&out, "items", static_cast<int64_t>(p.items));
    AppendField(&out, "wall_micros", p.wall_micros);
    AppendField(&out, "begin_micros", p.begin_micros);
    AppendField(&out, "end_micros", p.end_micros);
    AppendField(&out, "thread_id", p.thread_id);
    out += "\"parent\":";
    AppendEscaped(&out, p.parent);
    out += ",\"io\":";
    AppendIoStats(&out, p.io);
    out += '}';
  }
  out += "],\"plan_explain\":";
  AppendEscaped(&out, plan_explain);
  out += '}';
  return out;
}

Result<BulkDeleteReport> BulkDeleteReport::FromJson(const std::string& json) {
  JsonParser parser(json);
  BULKDEL_ASSIGN_OR_RETURN(JsonValue root, parser.Parse());
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("report JSON must be an object");
  }
  BulkDeleteReport report;
  BULKDEL_ASSIGN_OR_RETURN(report.strategy_used,
                           StrategyFromString(root.StringOr("strategy")));
  report.rows_deleted = static_cast<uint64_t>(root.IntOr("rows_deleted"));
  report.index_entries_deleted =
      static_cast<uint64_t>(root.IntOr("index_entries_deleted"));
  report.cascaded_rows = static_cast<uint64_t>(root.IntOr("cascaded_rows"));
  report.wall_micros = root.IntOr("wall_micros");
  report.plan_explain = root.StringOr("plan_explain");
  if (const JsonValue* io = root.Find("io")) {
    report.io = IoStatsFromJson(*io);
  }
  if (const JsonValue* pool = root.Find("pool")) {
    report.pool = PoolStatsFromJson(*pool);
  }
  if (const JsonValue* shards = root.Find("pool_shards")) {
    if (shards->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument("\"pool_shards\" must be an array");
    }
    for (const JsonValue& sv : shards->array) {
      report.pool_shards.push_back(PoolStatsFromJson(sv));
    }
  }
  if (const JsonValue* phases = root.Find("phases")) {
    if (phases->kind != JsonValue::Kind::kArray) {
      return Status::InvalidArgument("\"phases\" must be an array");
    }
    for (const JsonValue& pv : phases->array) {
      PhaseStats p;
      p.name = pv.StringOr("name");
      p.items = static_cast<uint64_t>(pv.IntOr("items"));
      p.wall_micros = pv.IntOr("wall_micros");
      p.begin_micros = pv.IntOr("begin_micros");
      p.end_micros = pv.IntOr("end_micros");
      p.thread_id = static_cast<int>(pv.IntOr("thread_id"));
      p.parent = pv.StringOr("parent");
      if (const JsonValue* io = pv.Find("io")) {
        p.io = IoStatsFromJson(*io);
      }
      report.phases.push_back(std::move(p));
    }
  }
  return report;
}

}  // namespace bulkdel

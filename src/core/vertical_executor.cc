// The paper's contribution: vertical, set-oriented bulk deletion. The delete
// list is adapted (by sorting, hashing or partitioning) to the physical
// layout of each structure, which is then processed in one batch:
//
//   sort(D.A) → ⋉̸ I_A (by key, collects RIDs) → sort(RIDs) → ⋉̸ R
//   (projects (B,RID), (C,RID) feeds) → ⋉̸ I_B, ⋉̸ I_C (by key or RID).
//
// The executor also implements §3's machinery: an exclusive table lock until
// the table and all unique indices are processed (the commit point), off-line
// secondary indices with side-file or direct-propagation catch-up, and
// WAL + per-phase checkpoints so an interrupted statement is rolled forward.
//
// Execution is a phase DAG run by PhaseScheduler. The chain prefix
// (sort-keys → key index → table) is sequential by data dependency; the
// per-secondary-index phases only depend on the table pass (their feeds), so
// with DatabaseOptions::exec_threads > 1 they run concurrently on a worker
// pool. Node order is the canonical serial order, which the serial scheduler
// replays exactly:
//
//   sort-keys → key → table → {unique secondaries} → commit
//                                 → {non-unique secondaries} → finalize
//
// Concurrency rules inside a run:
//  * chain-prefix phases and commit/finalize run exclusively (every other
//    node transitively depends on them or they on it), so they may checkpoint
//    inline — BufferPool::FlushAll while nothing else mutates pages;
//  * concurrent secondary phases must NOT FlushAll (it would read page bytes
//    another worker is writing through its pin), so in parallel mode their
//    durable checkpoints are deferred to the finalize node. A crash before
//    finalize leaves those phases unmarked and recovery re-runs them
//    idempotently from the feeds materialized (and checkpointed) at the
//    table phase;
//  * shared run state touched by concurrent secondaries (report counters,
//    the done-phase set, deferred checkpoint labels) is guarded by mu_;
//    each secondary phase otherwise touches only its own feed and index.

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_set>

#include "core/executors.h"
#include "core/phase_scheduler.h"
#include "exec/hash_delete.h"
#include "obs/metrics.h"
#include "obs/trace_recorder.h"
#include "exec/partitioned_delete.h"
#include "sort/external_sort.h"
#include "storage/spill.h"

namespace bulkdel {

namespace {

class VerticalRun {
 public:
  VerticalRun(ExecContext* ctx, TableDef* table, IndexDef* key_index,
              const BulkDeletePlan& plan)
      : ctx_(ctx),
        db_(ctx->db()),
        table_(table),
        key_index_(key_index),
        plan_(plan),
        logging_(db_->options().enable_recovery_log),
        parallel_(db_->options().exec_threads > 1),
        idx_latch_hist_(
            db_->metrics().histogram(obs::metric_names::kIdxLatchWaitNs)),
        leaf_reorg_hist_(db_->metrics().histogram(
            obs::metric_names::kLeafPagesReorganized)),
        ckpt_inline_counter_(
            db_->metrics().counter(obs::metric_names::kCkptInline)),
        ckpt_deferred_counter_(
            db_->metrics().counter(obs::metric_names::kCkptDeferred)),
        sidefile_depth_gauge_(
            db_->metrics().gauge(obs::metric_names::kSideFileDepth)),
        sidefile_drain_hist_(db_->metrics().histogram(
            obs::metric_names::kSideFileDrainBatch)),
        sidefile_catchup_hist_(db_->metrics().histogram(
            obs::metric_names::kSideFileCatchupNs)) {
    report_.strategy_used = plan_.strategy;
    report_.plan_explain = plan_.Explain();
    // Canonical secondary order comes from the plan (unique indices first).
    for (const PlanStep& step : plan_.steps) {
      if (step.is_table) continue;
      if (key_index_ != nullptr && step.structure == key_index_->name) {
        continue;
      }
      for (auto& index : table_->indices) {
        if (index->name == step.structure) {
          secondaries_.push_back(index.get());
          steps_by_name_[index->name] = &step;
        }
      }
    }
    // Pre-create every feed entry so concurrent secondary phases never
    // mutate the map itself — each phase touches only its own vector.
    for (IndexDef* index : secondaries_) {
      feeds_.emplace(index->name, std::vector<KeyRid>());
    }
  }

  Result<BulkDeleteReport> Run(const BulkDeleteSpec& spec) {
    keys_ = spec.keys;
    keys_sorted_ = spec.keys_sorted;
    is_range_ = spec.is_range();
    range_lo_ = spec.range_lo;
    range_hi_ = spec.range_hi;
    Stopwatch total;

    Status status = RunPhases();
    Status cleanup = ReleaseEverything(status.ok());
    BULKDEL_RETURN_IF_ERROR(status);
    BULKDEL_RETURN_IF_ERROR(cleanup);

    FinishReport(&total);
    return report_;
  }

  Result<BulkDeleteReport> Resume(const RecoveredBulkDelete& state) {
    resuming_ = true;
    bd_id_ = state.bd_id;
    done_ = state.phases_done;
    committed_ = state.committed;
    Stopwatch total;

    Status status = PrepareResume(state);
    if (status.ok()) status = RunPhases();
    Status cleanup = ReleaseEverything(status.ok());
    BULKDEL_RETURN_IF_ERROR(status);
    BULKDEL_RETURN_IF_ERROR(cleanup);

    FinishReport(&total);
    return report_;
  }

 private:
  std::string KeyPhaseLabel() const {
    return key_index_ != nullptr ? "index:" + key_index_->name
                                 : "table-no-index";
  }

  std::string TablePhaseLabel() const {
    return key_index_ != nullptr ? "table" : "table-no-index";
  }

  bool Done(const std::string& label) const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_.count(label) > 0;
  }

  void FinishReport(Stopwatch* total) {
    report_.phases = ctx_->TakePhases();
    // Attributed total (root + per-phase accounts) rather than a global-
    // counter delta: under concurrency the global counters interleave other
    // phases' traffic, while the attributed sum is exactly this statement's.
    report_.io = ctx_->AttributedTotal();
    report_.wall_micros = total->ElapsedMicros();
  }

  /// Assembles the phase DAG — node order is the canonical serial order —
  /// and hands it to the scheduler.
  Status RunPhases() {
    BULKDEL_RETURN_IF_ERROR(LockAndOffline());
    if (!resuming_) {
      BULKDEL_RETURN_IF_ERROR(LogBegin());
    }
    if (logging_) {
      // From here until the End record, concurrent updater DML is covered
      // by this statement's WAL (kUpdaterRow records, §3.1 durability).
      db_->SetUpdaterLoggingId(bd_id_);
    }

    std::vector<PhaseTask> tasks;
    auto add = [&tasks](std::string label, std::vector<int> deps,
                        std::function<Status()> body) {
      tasks.push_back(
          PhaseTask{std::move(label), std::move(deps), std::move(body)});
      return static_cast<int>(tasks.size()) - 1;
    };

    int sort_node = add("sort-keys", {}, [this] { return PhaseSortKeys(); });
    int table_node;
    if (key_index_ != nullptr) {
      int key_node = add(KeyPhaseLabel(), {sort_node},
                         [this] { return PhaseKeyIndex(); });
      table_node =
          add("table", {key_node}, [this] { return PhaseTable(); });
    } else {
      table_node = add(KeyPhaseLabel(), {sort_node},
                       [this] { return PhaseTableNoIndex(); });
    }

    // Unique indices must be consistent before the commit point (§3.1);
    // they depend only on their feeds, so they are mutually independent.
    std::vector<int> commit_deps{table_node};
    for (IndexDef* index : secondaries_) {
      if (!index->options.unique) continue;
      commit_deps.push_back(add("index:" + index->name, {table_node},
                                [this, index] {
                                  return PhaseSecondary(index);
                                }));
    }
    int commit_node =
        add("commit", std::move(commit_deps), [this] { return CommitPoint(); });

    // Non-unique indices catch up after the statement commits.
    std::vector<int> final_deps{commit_node};
    for (IndexDef* index : secondaries_) {
      if (index->options.unique) continue;
      final_deps.push_back(add("index:" + index->name, {commit_node},
                               [this, index] {
                                 return PhaseSecondary(index);
                               }));
    }
    add("finalize", std::move(final_deps), [this] { return FinishRun(); });

    return PhaseScheduler::Run(std::move(tasks), db_->options().exec_threads,
                               ctx_);
  }

  Status LockAndOffline() {
    db_->locks().LockExclusive(table_->name);
    exclusive_locked_ = true;
    IndexMode offline_mode =
        db_->options().concurrency == ConcurrencyProtocol::kSideFile
            ? IndexMode::kOfflineSideFile
            : IndexMode::kOfflineDirect;
    if (db_->options().concurrency != ConcurrencyProtocol::kNone) {
      for (auto& index : table_->indices) {
        if (offline_mode == IndexMode::kOfflineSideFile) {
          index->cc->side_file.Configure(&db_->disk(),
                                         db_->options().side_file_spill_ops);
        }
        index->cc->mode.store(offline_mode);
      }
    }
    return Status::OK();
  }

  Status LogBegin() {
    if (!logging_) return Status::OK();
    bd_id_ = db_->log().NextBulkDeleteId();
    LogRecord begin;
    begin.type = LogRecordType::kBegin;
    begin.bd_id = bd_id_;
    begin.label = table_->name;
    begin.aux = key_index_ != nullptr
                    ? table_->schema->column(
                              static_cast<size_t>(key_index_->column))
                          .name
                    : key_column_fallback_;
    if (is_range_) {
      // Range predicate: [lo, hi] rides in the Begin record itself (a
      // non-empty values field marks the statement as a range delete for
      // recovery). The empty input-keys list below keeps the resume path's
      // list accounting uniform.
      begin.values = {range_lo_, range_hi_};
    }
    db_->log().Append(std::move(begin));
    BULKDEL_RETURN_IF_ERROR(MaterializeList("input-keys", keys_));
    db_->log().Sync();
    return Status::OK();
  }

  template <typename T>
  Status MaterializeList(const std::string& label,
                         const std::vector<T>& items) {
    if (!logging_) return Status::OK();
    BULKDEL_ASSIGN_OR_RETURN(SpilledList<T> list,
                             SpillToDisk(&db_->disk(), items));
    LogRecord rec;
    rec.type = LogRecordType::kListMaterialized;
    rec.bd_id = bd_id_;
    rec.label = label;
    rec.pages = list.pages;
    rec.count = list.count;
    db_->log().Append(std::move(rec));
    {
      std::lock_guard<std::mutex> lock(mu_);
      spilled_pages_.push_back(std::move(list.pages));
    }
    return Status::OK();
  }

  /// Phase-end checkpoint: metas flushed, pool flushed (which first syncs the
  /// WAL via the pre-writeback hook), then the PhaseDone record made durable.
  ///
  /// `deferrable` marks phases that may run concurrently with other phases
  /// (the secondary-index nodes). FlushAll reads every dirty frame's bytes,
  /// racing any worker that is mutating a pinned page — so in parallel mode a
  /// deferrable checkpoint only records the label; the finalize node (which
  /// runs exclusively) flushes once and emits the pending PhaseDone records.
  Status CheckpointPhase(const std::string& label, bool deferrable = false) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_.insert(label);
      if (logging_ && deferrable && parallel_) {
        deferred_checkpoints_.push_back(label);
        ckpt_deferred_counter_->Add(1);
        if (recorder.enabled()) {
          recorder.RecordInstant(obs::TraceCategory::kCheckpoint, label,
                                 "deferred", 1);
        }
        return Status::OK();
      }
    }
    if (!logging_) return Status::OK();
    ckpt_inline_counter_->Add(1);
    if (recorder.enabled()) {
      recorder.RecordInstant(obs::TraceCategory::kCheckpoint, label,
                             "deferred", 0);
    }
    BULKDEL_RETURN_IF_ERROR(
        db_->CheckFault(fault_sites::kExecCheckpoint, label));
    BULKDEL_RETURN_IF_ERROR(table_->table->FlushMeta());
    for (auto& index : table_->indices) {
      BULKDEL_RETURN_IF_ERROR(index->tree->FlushMeta());
    }
    BULKDEL_RETURN_IF_ERROR(db_->pool().FlushAll());
    // Durability barrier: the checkpoint's claim is that the phase's pages
    // are on the medium, so fsync the page file before recording PhaseDone
    // (charged no-op under the sim backend, same fault site either way).
    BULKDEL_RETURN_IF_ERROR(db_->disk().Flush());
    // Crash window: the phase's page writes are durable but its PhaseDone
    // record is not — recovery must re-run the phase idempotently.
    BULKDEL_RETURN_IF_ERROR(
        db_->CheckFault(fault_sites::kExecCheckpointPostFlush, label));
    LogRecord rec;
    rec.type = LogRecordType::kPhaseDone;
    rec.bd_id = bd_id_;
    rec.label = label;
    db_->log().Append(std::move(rec));
    db_->log().Sync();
    return Status::OK();
  }

  Status PhaseSortKeys() {
    if (keys_sorted_) return Status::OK();
    PhaseScope scope(ctx_, "sort-keys");
    BULKDEL_RETURN_IF_ERROR(
        SortKeys(&db_->disk(), db_->options().memory_budget_bytes, &keys_));
    keys_sorted_ = true;
    scope.set_items(keys_.size());
    return Status::OK();
  }

  Status PhaseKeyIndex() {
    std::string label = KeyPhaseLabel();
    if (Done(label)) return Status::OK();
    BULKDEL_RETURN_IF_ERROR(db_->CheckCrashPoint(label));
    PhaseScope scope(ctx_, label, "sort-keys");
    const PlanStep* step = FindStep(key_index_->name);
    BtreeBulkDeleteStats stats;
    std::function<void(int64_t, const Rid&)> wal;
    if (logging_) {
      wal = [this, &label](int64_t key, const Rid& rid) {
        LogRecord rec;
        rec.type = LogRecordType::kEntryDeleted;
        rec.bd_id = bd_id_;
        rec.label = label;
        rec.key = key;
        rec.rid = rid;
        db_->log().Append(std::move(rec));
      };
    }
    if (is_range_) {
      // Leaf-run pass: fully-covered leaves are logged whole (one
      // kRangeLeafRun record carrying every (key, RID) pair) and spliced out
      // of the chain without ever being written; only boundary entries go
      // through the per-entry path with kEntryDeleted records.
      auto on_leaf_drop = [this, &label](
                              PageId leaf,
                              const std::vector<KeyRid>& run) -> Status {
        BULKDEL_RETURN_IF_ERROR(
            db_->CheckFault(fault_sites::kBtreeRangeLeafRun, label));
        if (logging_) {
          LogRecord rec;
          rec.type = LogRecordType::kRangeLeafRun;
          rec.bd_id = bd_id_;
          rec.label = label;
          rec.pages = {leaf};
          rec.count = run.size();
          rec.values.reserve(run.size() * 2);
          for (const KeyRid& e : run) {
            rec.values.push_back(e.key);
            rec.values.push_back(static_cast<int64_t>(e.rid.Pack()));
          }
          db_->log().Append(std::move(rec));
        }
        return Status::OK();
      };
      BULKDEL_RETURN_IF_ERROR(key_index_->tree->BulkDeleteRange(
          range_lo_, range_hi_, db_->options().reorg, &rids_, &stats,
          on_leaf_drop, wal, &dropped_leaf_pages_));
    } else if (step != nullptr && step->method == DeleteMethod::kClassicHash) {
      U64HashSet set(keys_.size());
      for (int64_t k : keys_) set.Insert(static_cast<uint64_t>(k));
      BULKDEL_RETURN_IF_ERROR(key_index_->tree->BulkDeleteByPredicate(
          [&](int64_t key, const Rid&) {
            return set.Contains(static_cast<uint64_t>(key));
          },
          db_->options().reorg, &stats, std::nullopt, std::nullopt,
          [&](int64_t key, const Rid& rid) {
            rids_.push_back(rid);
            if (wal) wal(key, rid);
          }));
    } else {
      BULKDEL_RETURN_IF_ERROR(key_index_->tree->BulkDeleteSortedKeys(
          keys_, db_->options().reorg, &rids_, &stats, wal));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      report_.index_entries_deleted += stats.entries_deleted;
    }
    leaf_reorg_hist_->Observe(static_cast<int64_t>(stats.leaves_freed));
    scope.set_items(stats.entries_deleted);
    BULKDEL_RETURN_IF_ERROR(MaterializeList("rids", rids_));
    // The key index locates the records via key order, so the RID list is in
    // key order — physical order only if the index is clustered.
    rids_sorted_ = key_index_->clustered;
    return CheckpointPhase(label);
  }

  Status PhaseTable() {
    const std::string label = "table";
    if (Done(label)) return Status::OK();
    BULKDEL_RETURN_IF_ERROR(db_->CheckCrashPoint(label));
    PhaseScope scope(ctx_, label, KeyPhaseLabel());
    if (!rids_sorted_) {
      BULKDEL_RETURN_IF_ERROR(
          SortRids(&db_->disk(), db_->options().memory_budget_bytes, &rids_));
      rids_sorted_ = true;
    }
    if (is_range_) {
      // A resumed range run seeds RIDs from kRangeLeafRun/kEntryDeleted
      // records AND rediscovers the survivors among them in the re-run key
      // pass; a duplicate RID would double-count a page's doomed tuples in
      // the extent-drop coverage proof, so collapse them here.
      rids_.erase(std::unique(rids_.begin(), rids_.end(),
                              [](const Rid& a, const Rid& b) {
                                return a.Pack() == b.Pack();
                              }),
                  rids_.end());
      // Extent-drop pass: fully-covered heap pages are spliced out of the
      // chain without being read (no feeds to project — range secondaries
      // probe by RID). Each drop is WAL-logged before the splice; the pages
      // themselves are freed at finalize, after the End record is durable.
      uint64_t deleted = 0;
      auto on_drop = [this](PageId page, uint64_t tuples) -> Status {
        BULKDEL_RETURN_IF_ERROR(db_->CheckFault(fault_sites::kHeapExtentDrop,
                                                std::to_string(page)));
        if (logging_) {
          LogRecord rec;
          rec.type = LogRecordType::kExtentDrop;
          rec.bd_id = bd_id_;
          rec.pages = {page};
          rec.count = tuples;
          db_->log().Append(std::move(rec));
        }
        return Status::OK();
      };
      BULKDEL_RETURN_IF_ERROR(table_->table->BulkDeleteSortedRidsExtentDrop(
          rids_, recovered_extent_pages_, on_drop, nullptr, &deleted,
          &extent_pages_));
      report_.rows_deleted += deleted;
      scope.set_items(deleted);
      return CheckpointPhase(label);
    }
    const Schema& schema = *table_->schema;
    uint64_t deleted = 0;
    BULKDEL_RETURN_IF_ERROR(table_->table->BulkDeleteSortedRids(
        rids_,
        [&](const Rid& rid, const char* tuple) {
          std::vector<int64_t> values;
          values.reserve(secondaries_.size());
          for (IndexDef* index : secondaries_) {
            int64_t v = schema.GetInt(tuple,
                                      static_cast<size_t>(index->column));
            values.push_back(v);
            feeds_[index->name].emplace_back(v, rid);
          }
          if (logging_) {
            LogRecord rec;
            rec.type = LogRecordType::kRowDeleted;
            rec.bd_id = bd_id_;
            rec.rid = rid;
            rec.values = std::move(values);
            db_->log().Append(std::move(rec));
          }
        },
        &deleted, nullptr));
    report_.rows_deleted += deleted;
    scope.set_items(deleted);
    for (IndexDef* index : secondaries_) {
      BULKDEL_RETURN_IF_ERROR(
          MaterializeList("feed:" + index->name, feeds_[index->name]));
    }
    return CheckpointPhase(label);
  }

  /// Fallback when no index exists on the delete-list column: one full table
  /// scan probing a main-memory hash of the keys (there is no access path, so
  /// the scan is unavoidable; the plan stays vertical for the indices).
  Status PhaseTableNoIndex() {
    const std::string label = "table-no-index";
    if (Done(label)) return Status::OK();
    BULKDEL_RETURN_IF_ERROR(db_->CheckCrashPoint(label));
    PhaseScope scope(ctx_, label, "sort-keys");
    int key_column = table_->schema->FindColumn(key_column_fallback_);
    if (key_column < 0) {
      return Status::NotFound("no column " + key_column_fallback_);
    }
    U64HashSet set(keys_.size());
    if (!is_range_) {
      for (int64_t k : keys_) set.Insert(static_cast<uint64_t>(k));
    }
    const Schema& schema = *table_->schema;
    uint64_t deleted = 0;
    BULKDEL_RETURN_IF_ERROR(table_->table->ScanDeleteIf(
        [&](const Rid&, const char* tuple) {
          int64_t k = schema.GetInt(tuple, static_cast<size_t>(key_column));
          // Range with no access path: one predicate scan — the predicate is
          // evaluated here, inside the admission window, not at parse time.
          if (is_range_) return k >= range_lo_ && k <= range_hi_;
          return set.Contains(static_cast<uint64_t>(k));
        },
        [&](const Rid& rid, const char* tuple) {
          std::vector<int64_t> values;
          values.reserve(secondaries_.size());
          for (IndexDef* index : secondaries_) {
            int64_t v = schema.GetInt(tuple,
                                      static_cast<size_t>(index->column));
            values.push_back(v);
            feeds_[index->name].emplace_back(v, rid);
          }
          // This path never fills rids_ (no access-path pass produced one);
          // the scrub pass needs the dead slots, so collect them here.
          if (db_->options().scrub_deleted_pages) {
            scrub_rids_.push_back(rid);
          }
          if (logging_) {
            LogRecord rec;
            rec.type = LogRecordType::kRowDeleted;
            rec.bd_id = bd_id_;
            rec.rid = rid;
            rec.values = std::move(values);
            db_->log().Append(std::move(rec));
          }
        },
        &deleted));
    report_.rows_deleted += deleted;
    scope.set_items(deleted);
    for (IndexDef* index : secondaries_) {
      BULKDEL_RETURN_IF_ERROR(
          MaterializeList("feed:" + index->name, feeds_[index->name]));
    }
    return CheckpointPhase(label);
  }

  /// Runs on a scheduler worker when exec_threads > 1; touches only this
  /// index's feed and structures plus mu_-guarded run state.
  Status PhaseSecondary(IndexDef* index) {
    std::string label = "index:" + index->name;
    if (Done(label)) {
      BULKDEL_RETURN_IF_ERROR(BringOnline(index));
      return Status::OK();
    }
    BULKDEL_RETURN_IF_ERROR(db_->CheckCrashPoint(label));
    PhaseScope scope(ctx_, label, TablePhaseLabel());
    const PlanStep* step = FindStep(index->name);
    DeleteMethod method = step != nullptr ? step->method : DeleteMethod::kMerge;
    std::vector<KeyRid>& feed = feeds_.at(index->name);
    BtreeBulkDeleteStats stats;

    if (is_range_ && key_index_ != nullptr) {
      // Range plans skip feed projection: the RID list from the leaf-run
      // pass probes each secondary directly (rids_ is immutable once the
      // table phase is done, so concurrent secondary phases share it).
      std::unique_lock<std::mutex> latch = LatchIndex(index);
      BULKDEL_RETURN_IF_ERROR(HashDeleteIndexByRids(
          index->tree.get(), rids_, db_->options().reorg, &stats));
      latch.unlock();
      {
        std::lock_guard<std::mutex> lock(mu_);
        report_.index_entries_deleted += stats.entries_deleted;
      }
      leaf_reorg_hist_->Observe(static_cast<int64_t>(stats.leaves_freed));
      scope.set_items(stats.entries_deleted);
      BULKDEL_RETURN_IF_ERROR(BringOnline(index));
      return CheckpointPhase(label, /*deferrable=*/true);
    }

    switch (method) {
      case DeleteMethod::kMerge: {
        bool pre_sorted = step != nullptr && step->input_sorted;
        if (!pre_sorted) {
          BULKDEL_RETURN_IF_ERROR(SortKeyRids(
              &db_->disk(), db_->options().memory_budget_bytes, &feed));
        }
        // Chunked so concurrent updaters can interleave between latch
        // windows while this off-line index is processed.
        size_t chunk = db_->options().bulk_chunk_entries;
        if (chunk == 0) chunk = feed.size() + 1;
        for (size_t i = 0; i < feed.size() || i == 0; i += chunk) {
          size_t hi = std::min(i + chunk, feed.size());
          std::vector<KeyRid> slice(feed.begin() + i, feed.begin() + hi);
          bool last = hi >= feed.size();
          BtreeBulkDeleteStats chunk_stats;
          {
            std::unique_lock<std::mutex> latch = LatchIndex(index);
            BULKDEL_RETURN_IF_ERROR(index->tree->BulkDeleteSortedEntries(
                slice, last ? db_->options().reorg : ReorgMode::kFreeAtEmpty,
                &chunk_stats));
          }
          stats.entries_deleted += chunk_stats.entries_deleted;
          stats.leaves_visited += chunk_stats.leaves_visited;
          stats.leaves_freed += chunk_stats.leaves_freed;
          stats.skipped_undeletable += chunk_stats.skipped_undeletable;
          if (last) break;
        }
        break;
      }
      case DeleteMethod::kClassicHash: {
        std::vector<Rid> rids;
        rids.reserve(feed.size());
        for (const KeyRid& e : feed) rids.push_back(e.rid);
        std::unique_lock<std::mutex> latch = LatchIndex(index);
        BULKDEL_RETURN_IF_ERROR(HashDeleteIndexByRids(
            index->tree.get(), rids, db_->options().reorg, &stats));
        break;
      }
      case DeleteMethod::kPartitionedHash: {
        PartitionedDeleteStats pstats;
        std::unique_lock<std::mutex> latch = LatchIndex(index);
        BULKDEL_RETURN_IF_ERROR(PartitionedHashDeleteIndex(
            index->tree.get(), &db_->disk(),
            db_->options().memory_budget_bytes, feed, db_->options().reorg,
            &pstats));
        stats = pstats.btree;
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      report_.index_entries_deleted += stats.entries_deleted;
    }
    leaf_reorg_hist_->Observe(static_cast<int64_t>(stats.leaves_freed));
    scope.set_items(stats.entries_deleted);
    BULKDEL_RETURN_IF_ERROR(BringOnline(index));
    return CheckpointPhase(label, /*deferrable=*/true);
  }

  /// Acquires an off-line index's latch, observing the wait under
  /// idx.latch_wait_ns plus a latch-category span for long waits when
  /// tracing is enabled. Clock-free when tracing is off.
  std::unique_lock<std::mutex> LatchIndex(IndexDef* index) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    if (!recorder.enabled()) {
      return std::unique_lock<std::mutex>(index->cc->latch);
    }
    int64_t t0 = MonotonicNanos();
    std::unique_lock<std::mutex> latch(index->cc->latch);
    int64_t waited = MonotonicNanos() - t0;
    idx_latch_hist_->Observe(waited);
    if (waited > 1000) {
      recorder.RecordComplete(obs::TraceCategory::kLatch, "idx.latch", t0,
                              t0 + waited, "index_column",
                              index->column);
    }
    return latch;
  }

  /// Side-file catch-up / undeletable-flag cleanup, then flip on-line.
  /// Restartable: each catch-up batch is applied (idempotently) *before* it
  /// is consumed from the side-file, so an error returns with the index
  /// still off-line and the un-applied tail still queued — calling
  /// BringOnline again simply resumes the drain.
  Status BringOnline(IndexDef* index) {
    IndexMode mode = index->cc->mode.load();
    if (mode == IndexMode::kOnline) return Status::OK();
    if (mode == IndexMode::kOfflineSideFile) {
      SideFile& side_file = index->cc->side_file;
      // Drain in batches while updaters may still be appending; once nearly
      // empty — or after a bounded number of rounds, if appenders outpace
      // the drain — quiesce appenders and drain the tail (§3.1.1).
      for (int rounds = 0; side_file.size() > 64 && rounds < 10000; ++rounds) {
        BULKDEL_RETURN_IF_ERROR(DrainAndApply(index, 256));
      }
      SideFile::QuiesceGuard quiesce(&side_file);
      while (side_file.size() > 0) {
        BULKDEL_RETURN_IF_ERROR(
            DrainAndApply(index, std::numeric_limits<size_t>::max()));
      }
      // Crash window: the side-file is fully applied but nothing here is
      // durable yet — recovery re-applies the logged updater ops
      // idempotently over the rebuilt index.
      BULKDEL_RETURN_IF_ERROR(
          db_->CheckFault(fault_sites::kTxnOnlineFlip, index->name));
      index->cc->mode.store(IndexMode::kOnline);
      return Status::OK();
    }
    // Direct propagation (§3.1.2): clear the undeletable markers and only
    // then flip on-line, both under the index latch that ApplyIndexInsert
    // holds while deciding an entry's flags. Flipping first (the old order)
    // let an updater that had already read the off-line mode insert a
    // *marked* entry after the cleanup pass — a stale marker that survived
    // into normal operation; recovery additionally sweeps markers in case
    // of a crash between the cleanup and the statement's End record.
    std::lock_guard<std::mutex> latch(index->cc->latch);
    BULKDEL_RETURN_IF_ERROR(
        db_->CheckFault(fault_sites::kTxnOnlineFlip, index->name));
    // Skip the full-leaf clearing scan when no updater marked anything —
    // a quiet run must cost the same I/O as the exclusive protocol. Not
    // safe on a resumed run: the pre-crash mark count is volatile state,
    // so resume always scans (as does RecoverDatabase's marker sweep).
    if (resuming_ ||
        index->cc->undeletable_marks.load(std::memory_order_relaxed) > 0) {
      BULKDEL_RETURN_IF_ERROR(index->tree->ClearUndeletableFlags());
      index->cc->undeletable_marks.store(0, std::memory_order_relaxed);
    }
    index->cc->mode.store(IndexMode::kOnline);
    return Status::OK();
  }

  /// One restartable catch-up batch: peek up to `max_ops`, apply them, and
  /// only then consume them (a failure between the two re-applies the batch
  /// on the next call — every op is idempotent, so that is safe).
  Status DrainAndApply(IndexDef* index, size_t max_ops) {
    SideFile& side_file = index->cc->side_file;
    BULKDEL_RETURN_IF_ERROR(
        db_->CheckFault(fault_sites::kTxnCatchupBatch, index->name));
    BULKDEL_ASSIGN_OR_RETURN(std::vector<SideFileOp> batch,
                             side_file.PeekBatch(max_ops));
    if (batch.empty()) return Status::OK();
    int64_t t0 = MonotonicNanos();
    BULKDEL_RETURN_IF_ERROR(ApplySideFileBatch(index, batch));
    BULKDEL_RETURN_IF_ERROR(side_file.ConsumeFront(batch.size()));
    sidefile_drain_hist_->Observe(static_cast<int64_t>(batch.size()));
    sidefile_catchup_hist_->Observe(MonotonicNanos() - t0);
    sidefile_depth_gauge_->Set(static_cast<int64_t>(side_file.size()));
    if (logging_) {
      // Diagnostic only (not synced): kUpdaterRow records are the replay
      // source; this just narrates catch-up progress for log archaeology.
      LogRecord rec;
      rec.type = LogRecordType::kSideFileDrain;
      rec.bd_id = bd_id_;
      rec.label = index->name;
      rec.count = batch.size();
      db_->log().Append(std::move(rec));
    }
    return Status::OK();
  }

  /// Applies a drained batch the set-oriented way (the point of §3.1.1's
  /// catch-up): collapse it last-op-wins per (key, RID) composite, then run
  /// the deletions through the same sorted-merge leaf pass the bulk delete
  /// itself uses, and the insertions through the sorted bulk insert —
  /// rather than replaying record-at-a-time in arrival order.
  Status ApplySideFileBatch(IndexDef* index,
                            const std::vector<SideFileOp>& batch) {
    if (batch.empty()) return Status::OK();
    std::map<std::pair<int64_t, uint64_t>, SideFileOp> collapsed;
    for (const SideFileOp& op : batch) {
      collapsed[{op.key, op.rid.Pack()}] = op;
    }
    std::vector<KeyRid> deletes;
    std::vector<KeyRid> inserts;
    for (const auto& [composite, op] : collapsed) {
      (op.is_insert ? inserts : deletes).emplace_back(op.key, op.rid);
    }
    std::lock_guard<std::mutex> latch(index->cc->latch);
    if (!deletes.empty()) {
      // Tolerates entries that are already gone — idempotent under
      // re-application after a failed ConsumeFront.
      BULKDEL_RETURN_IF_ERROR(index->tree->BulkDeleteSortedEntries(
          deletes, ReorgMode::kFreeAtEmpty, nullptr));
    }
    if (!inserts.empty()) {
      Status bulk = index->tree->BulkInsertSorted(inserts);
      if (bulk.code() == StatusCode::kAlreadyExists) {
        // Re-application after a failed ConsumeFront: some entries landed
        // already. BulkInsertSorted left the tree unchanged; fall back to
        // per-entry inserts tolerating the duplicates.
        for (const KeyRid& e : inserts) {
          Status s = index->tree->Insert(e.key, e.rid);
          if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
        }
      } else {
        BULKDEL_RETURN_IF_ERROR(bulk);
      }
    }
    return Status::OK();
  }

  /// Resume only: rolls the recovered §3.1 updater DML forward. Ops at
  /// different RIDs are independent, but a slot freed by a logged delete may
  /// have been reused by a later logged insert at the same RID — and any
  /// prefix of that history may already be durable (evictions and
  /// checkpoints flush heap and index pages independently). So the ops are
  /// grouped by RID and each group is reconciled as a unit to its net final
  /// state instead of being re-executed record-at-a-time.
  Status ReplayUpdaterOps() {
    if (updater_replay_.empty()) return Status::OK();
    std::vector<std::vector<const RecoveredBulkDelete::UpdaterOp*>> groups;
    std::map<uint64_t, size_t> group_of;
    for (const RecoveredBulkDelete::UpdaterOp& op : updater_replay_) {
      auto [it, is_new] = group_of.try_emplace(op.rid.Pack(), groups.size());
      if (is_new) groups.emplace_back();
      groups[it->second].push_back(&op);
    }
    for (const auto& group : groups) {
      BULKDEL_RETURN_IF_ERROR(ReplayRidGroup(group));
    }
    updater_replay_.clear();
    return Status::OK();
  }

  /// Materializes a kUpdaterRow record's int values into tuple bytes.
  Status MaterializeUpdaterRow(const std::vector<int64_t>& values,
                               std::vector<char>* tuple) {
    tuple->assign(table_->schema->tuple_size(), 0);
    size_t vi = 0;
    for (size_t c = 0; c < table_->schema->num_columns(); ++c) {
      if (table_->schema->column(c).type != ColumnType::kInt64) continue;
      if (vi >= values.size()) {
        return Status::Corruption("updater record too short for " +
                                  table_->name);
      }
      table_->schema->SetInt(tuple->data(), c, values[vi++]);
    }
    return Status::OK();
  }

  /// Reconciles one RID's logged op history (alternating inserts and
  /// deletes of that slot, in statement order) against the recovered state:
  /// the heap slot is driven to the state after the group's last op, and
  /// each key ever written at this RID is asserted present or absent in
  /// every index per the last op that named it. All steps tolerate being
  /// already applied, so the durable state may sit anywhere in the group's
  /// history — including past ops whose slot was later reused, the case a
  /// record-at-a-time replay would mistake for corruption.
  Status ReplayRidGroup(
      const std::vector<const RecoveredBulkDelete::UpdaterOp*>& ops) {
    const Rid rid = ops.front()->rid;
    const size_t tuple_size = table_->schema->tuple_size();
    std::vector<std::vector<char>> rows(ops.size());
    for (size_t i = 0; i < ops.size(); ++i) {
      BULKDEL_RETURN_IF_ERROR(MaterializeUpdaterRow(ops[i]->values, &rows[i]));
    }

    std::vector<char> current(tuple_size);
    Status get = table_->table->Get(rid, current.data());
    if (!get.ok() && !get.IsNotFound()) return get;
    const bool occupied = get.ok();
    if (occupied) {
      // The slot must hold the row of one of this group's inserts; anything
      // else means the WAL and the heap disagree about who owns the slot.
      bool known = false;
      for (size_t i = 0; i < ops.size() && !known; ++i) {
        known = ops[i]->is_insert &&
                std::memcmp(current.data(), rows[i].data(), tuple_size) == 0;
      }
      if (!known) {
        return Status::Corruption("updater replay: slot " + rid.ToString() +
                                  " holds a row no logged op wrote");
      }
    }
    if (ops.back()->is_insert) {
      if (!occupied) {
        BULKDEL_RETURN_IF_ERROR(table_->table->InsertAt(rid, rows.back().data()));
      } else if (std::memcmp(current.data(), rows.back().data(), tuple_size) !=
                 0) {
        // Durable state stopped at an earlier insert the log later deleted.
        BULKDEL_RETURN_IF_ERROR(table_->table->Delete(rid));
        BULKDEL_RETURN_IF_ERROR(table_->table->InsertAt(rid, rows.back().data()));
      }
    } else if (occupied) {
      BULKDEL_RETURN_IF_ERROR(table_->table->Delete(rid));
    }

    for (auto& index : table_->indices) {
      // Last op naming a key decides whether (key, rid) survives.
      std::vector<std::pair<int64_t, bool>> final_state;
      for (size_t i = 0; i < ops.size(); ++i) {
        int64_t key = table_->schema->GetInt(
            rows[i].data(), static_cast<size_t>(index->column));
        auto found = std::find_if(
            final_state.begin(), final_state.end(),
            [key](const std::pair<int64_t, bool>& e) { return e.first == key; });
        if (found != final_state.end()) {
          found->second = ops[i]->is_insert;
        } else {
          final_state.emplace_back(key, ops[i]->is_insert);
        }
      }
      std::lock_guard<std::mutex> latch(index->cc->latch);
      for (const auto& [key, present] : final_state) {
        if (present) {
          // Non-unique trees accept duplicate (key, RID) pairs, so probe
          // first to keep the replay idempotent.
          BULKDEL_ASSIGN_OR_RETURN(std::vector<Rid> hits,
                                   index->tree->Search(key));
          if (std::find(hits.begin(), hits.end(), rid) != hits.end()) continue;
          Status s = index->tree->Insert(key, rid);
          if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
        } else {
          Status s = index->tree->Delete(key, rid);
          if (!s.ok() && !s.IsNotFound()) return s;
        }
      }
    }
    return Status::OK();
  }

  /// Table + unique indices done: the statement commits; concurrent readers
  /// and updaters may proceed while non-unique indices catch up (§3.1).
  /// Runs exclusively: every unique-secondary node precedes it in the DAG.
  Status CommitPoint() {
    if (committed_) {
      if (exclusive_locked_) {
        db_->locks().UnlockExclusive(table_->name);
        exclusive_locked_ = false;
      }
      return Status::OK();
    }
    BULKDEL_RETURN_IF_ERROR(db_->CheckFault(fault_sites::kExecCommit));
    if (logging_) {
      LogRecord rec;
      rec.type = LogRecordType::kCommit;
      rec.bd_id = bd_id_;
      db_->log().Append(std::move(rec));
      db_->log().Sync();
    }
    committed_ = true;
    // Unique indices were fully processed above; flip them on-line.
    if (key_index_ != nullptr) {
      BULKDEL_RETURN_IF_ERROR(BringOnline(key_index_));
    }
    for (IndexDef* index : secondaries_) {
      if (index->options.unique) {
        BULKDEL_RETURN_IF_ERROR(BringOnline(index));
      }
    }
    if (exclusive_locked_) {
      db_->locks().UnlockExclusive(table_->name);
      exclusive_locked_ = false;
    }
    return Status::OK();
  }

  /// Terminal DAG node; runs exclusively (depends on everything else), so
  /// flushing is safe and any deferred secondary checkpoints become durable
  /// here, just before the End record.
  Status FinishRun() {
    PhaseScope scope(ctx_, "finalize", TablePhaseLabel());
    // Resume only: replay the §3.1 updater DML recovered from kUpdaterRow
    // records. Runs here — after every secondary phase, so each index is
    // back on-line — and before the flush below makes the effects durable.
    // Idempotent (RID-directed), so a crash mid-replay just replays again.
    BULKDEL_RETURN_IF_ERROR(ReplayUpdaterOps());
    // Crash window: every phase body has completed, but in parallel mode the
    // secondary checkpoints are still deferred (volatile) — recovery must
    // re-run those phases idempotently from the checkpointed feeds.
    BULKDEL_RETURN_IF_ERROR(db_->CheckFault(fault_sites::kExecFinalize));
    BULKDEL_RETURN_IF_ERROR(table_->table->FlushMeta());
    for (auto& index : table_->indices) {
      BULKDEL_RETURN_IF_ERROR(index->tree->FlushMeta());
    }
    BULKDEL_RETURN_IF_ERROR(db_->pool().FlushAll());
    // Finalize barrier: everything the statement wrote is fsynced before the
    // End record can truncate the WAL that would otherwise re-create it.
    BULKDEL_RETURN_IF_ERROR(db_->disk().Flush());
    if (logging_) {
      for (const std::string& label : deferred_checkpoints_) {
        LogRecord rec;
        rec.type = LogRecordType::kPhaseDone;
        rec.bd_id = bd_id_;
        rec.label = label;
        db_->log().Append(std::move(rec));
      }
      deferred_checkpoints_.clear();
      // Crash window: deferred PhaseDone records are appended (volatile) but
      // the End record is not yet durable.
      BULKDEL_RETURN_IF_ERROR(
          db_->CheckFault(fault_sites::kExecFinalizePreEnd));
      // New updater DML stops being WAL-covered here: the flush above made
      // every op logged so far durable in the structures themselves, and
      // the End record is about to truncate their records.
      db_->SetUpdaterLoggingId(0);
      LogRecord rec;
      rec.type = LogRecordType::kEnd;
      rec.bd_id = bd_id_;
      db_->log().Append(std::move(rec));
      db_->log().Sync();
      db_->log().TruncateCompleted();
      for (std::vector<PageId>& pages : spilled_pages_) {
        for (PageId p : pages) {
          BULKDEL_RETURN_IF_ERROR(db_->disk().FreePage(p));
          NoteFreedPage(p);
        }
      }
      spilled_pages_.clear();
    }
    // Side-file spill pages whose ops were staged back during catch-up are
    // reclaimed only now: before the End record truncated the kSideFileSpill
    // records, freeing them could have let a reallocation reuse an id that a
    // post-crash recovery would free again — on a live page. Ditto for the
    // orphaned spill pages a resumed run inherited from those records.
    for (auto& index : table_->indices) {
      for (PageId p : index->cc->side_file.TakeReclaimablePages()) {
        BULKDEL_RETURN_IF_ERROR(db_->disk().FreePage(p));
        NoteFreedPage(p);
      }
    }
    for (PageId p : recovered_sidefile_pages_) {
      BULKDEL_RETURN_IF_ERROR(db_->disk().FreePage(p));
      NoteFreedPage(p);
    }
    recovered_sidefile_pages_.clear();
    // Extent-dropped heap pages are freed only now, after the End record:
    // freeing them earlier would let the allocator alias them while a
    // post-crash recovery could still re-process their kExtentDrop records.
    // The two sources (this run's drops, recovered drops already detached
    // before the crash) can overlap on a resume, so free each page once.
    if (!extent_pages_.empty() || !recovered_extent_pages_.empty()) {
      std::vector<PageId> to_free = extent_pages_;
      for (PageId p : recovered_extent_pages_) {
        if (std::find(to_free.begin(), to_free.end(), p) == to_free.end()) {
          to_free.push_back(p);
        }
      }
      BULKDEL_RETURN_IF_ERROR(table_->table->FreeDroppedPages(to_free));
      for (PageId p : to_free) NoteFreedPage(p);
      extent_pages_.clear();
      recovered_extent_pages_.clear();
    }
    // Likewise the index nodes the leaf-run pass detached. A resumed run can
    // re-drop a leaf whose detach write was lost, so the recovered and live
    // lists may overlap — free each page once (pool drop: a cached frame for
    // the emptied node must not be written back over a reallocated page).
    if (!dropped_leaf_pages_.empty() || !recovered_leaf_pages_.empty()) {
      std::vector<PageId> to_free = dropped_leaf_pages_;
      for (PageId p : recovered_leaf_pages_) {
        if (std::find(to_free.begin(), to_free.end(), p) == to_free.end()) {
          to_free.push_back(p);
        }
      }
      for (PageId p : to_free) {
        BULKDEL_RETURN_IF_ERROR(db_->pool().DeletePage(p));
        NoteFreedPage(p);
      }
      dropped_leaf_pages_.clear();
      recovered_leaf_pages_.clear();
    }
    if (db_->options().scrub_deleted_pages) {
      BULKDEL_RETURN_IF_ERROR(ScrubAfterEnd());
    }
    return Status::OK();
  }

  /// Verified-erasure pass (DatabaseOptions::scrub_deleted_pages), run as
  /// the tail of finalize when every freed page is reclaimable and — with
  /// logging — the End record is durable: dead tuple bytes carry no
  /// recovery obligation anymore, so zeroing them cannot lose committed
  /// work, and a crash mid-scrub merely leaves some dead bytes behind for
  /// the next scrubbed statement (erasure is guaranteed on clean statement
  /// completion). Two legs: memset the dead slots of surviving heap pages
  /// (through the pool, flushed below), and overwrite every page this
  /// statement freed — heap extents, dropped B-tree leaves, spilled
  /// delete-list / side-file scratch pages — with zeros directly on disk
  /// (they are out of the pool, so no stale frame can resurrect the bytes).
  Status ScrubAfterEnd() {
    std::unordered_set<PageId> freed(scrub_freed_pages_.begin(),
                                     scrub_freed_pages_.end());
    std::vector<Rid> dead = rids_;
    dead.insert(dead.end(), scrub_rids_.begin(), scrub_rids_.end());
    std::sort(dead.begin(), dead.end());
    dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
    if (!dead.empty()) {
      BULKDEL_RETURN_IF_ERROR(table_->table->ScrubDeadSlots(dead, freed));
      BULKDEL_RETURN_IF_ERROR(db_->pool().FlushAll());
    }
    if (!freed.empty()) {
      std::vector<char> zeros(kPageSize, 0);
      for (PageId p : scrub_freed_pages_) {
        BULKDEL_RETURN_IF_ERROR(db_->disk().WritePage(p, zeros.data()));
      }
    }
    scrub_freed_pages_.clear();
    if (dead.empty() && freed.empty()) return Status::OK();
    return db_->disk().Flush();
  }

  void NoteFreedPage(PageId p) {
    if (db_->options().scrub_deleted_pages) scrub_freed_pages_.push_back(p);
  }

  /// Always runs, success or failure: release the lock, restore index modes
  /// (a crashed run leaves everything off-line on purpose — recovery fixes
  /// it — but an error with no logging must not wedge the database).
  Status ReleaseEverything(bool success) {
    if (logging_) db_->SetUpdaterLoggingId(0);
    if (exclusive_locked_) {
      db_->locks().UnlockExclusive(table_->name);
      exclusive_locked_ = false;
    }
    if (!success && !logging_) {
      // Error without recovery logging: nothing will roll this forward, so
      // do not wedge the database off-line. Apply whatever side-file tail
      // exists best-effort, then flip on-line (the statement itself already
      // failed; updater ops are at least not silently dropped).
      for (auto& index : table_->indices) {
        if (index->cc->mode.load() == IndexMode::kOfflineSideFile) {
          SideFile::QuiesceGuard quiesce(&index->cc->side_file);
          while (index->cc->side_file.size() > 0) {
            Status s = DrainAndApply(index.get(),
                                     std::numeric_limits<size_t>::max());
            if (!s.ok()) break;
          }
          index->cc->side_file.Reset();
        }
        index->cc->mode.store(IndexMode::kOnline);
      }
    }
    return Status::OK();
  }

  Status PrepareResume(const RecoveredBulkDelete& state) {
    key_column_fallback_ = state.key_column;
    updater_replay_ = state.updater_ops;
    recovered_sidefile_pages_ = state.sidefile_pages;
    is_range_ = state.is_range;
    range_lo_ = state.range_lo;
    range_hi_ = state.range_hi;
    recovered_extent_pages_ = state.extent_pages;
    recovered_leaf_pages_ = state.leaf_pages;
    // Input keys.
    auto input = state.lists.find("input-keys");
    if (input == state.lists.end()) {
      return Status::Corruption("recovered bulk delete lacks input keys");
    }
    BULKDEL_RETURN_IF_ERROR(LoadList(input->second, &keys_));
    std::sort(keys_.begin(), keys_.end());
    keys_sorted_ = true;

    const std::string key_label = KeyPhaseLabel();
    if (key_index_ != nullptr) {
      if (Done(key_label)) {
        auto rids = state.lists.find("rids");
        if (rids == state.lists.end()) {
          return Status::Corruption("key phase done but no rid list logged");
        }
        BULKDEL_RETURN_IF_ERROR(LoadList(rids->second, &rids_));
      } else if (!state.wal_index_entries.empty()) {
        if (is_range_) {
          // Range resume: only seed the RID list. The re-run key phase
          // deletes whatever of these entries still exists (the [lo, hi]
          // pass rediscovers them — producing duplicates the table phase
          // removes), and a per-entry removal here would free emptied
          // leaves immediately, re-introducing the page-reuse hazard the
          // deferred-free protocol exists to close.
          for (const KeyRid& e : state.wal_index_entries) {
            rids_.push_back(e.rid);
          }
        } else {
          // Replay: remove WAL'd entries whose page writes were lost, and
          // seed the RID list with the WAL'd deletions (their entries are
          // gone, so the re-run below cannot rediscover them).
          std::vector<KeyRid> wal = state.wal_index_entries;
          std::sort(wal.begin(), wal.end());
          BULKDEL_RETURN_IF_ERROR(key_index_->tree->BulkDeleteSortedEntries(
              wal, ReorgMode::kFreeAtEmpty, nullptr));
          for (const KeyRid& e : wal) rids_.push_back(e.rid);
        }
      }
    }

    if (Done("table") || Done("table-no-index")) {
      for (IndexDef* index : secondaries_) {
        if (is_range_ && key_index_ != nullptr) continue;  // no feeds: by RID
        auto feed = state.lists.find("feed:" + index->name);
        if (feed == state.lists.end()) {
          return Status::Corruption("table phase done but feed missing for " +
                                    index->name);
        }
        BULKDEL_RETURN_IF_ERROR(LoadList(feed->second,
                                         &feeds_[index->name]));
      }
    } else if (!state.wal_rows.empty()) {
      // Replay WAL'd row deletions and reconstruct their feed contributions.
      std::vector<Rid> wal_rids;
      wal_rids.reserve(state.wal_rows.size());
      for (const auto& [rid, values] : state.wal_rows) {
        wal_rids.push_back(rid);
        for (size_t i = 0; i < secondaries_.size() && i < values.size();
             ++i) {
          feeds_[secondaries_[i]->name].emplace_back(values[i], rid);
        }
      }
      std::sort(wal_rids.begin(), wal_rids.end());
      uint64_t deleted = 0;
      BULKDEL_RETURN_IF_ERROR(table_->table->BulkDeleteSortedRids(
          wal_rids, nullptr, &deleted, nullptr));
      report_.rows_deleted += deleted;
    }
    rids_sorted_ = false;
    return Status::OK();
  }

  template <typename T>
  Status LoadList(const RecoveredBulkDelete::List& list, std::vector<T>* out) {
    SpilledList<T> spilled;
    spilled.pages = list.pages;
    spilled.count = list.count;
    BULKDEL_ASSIGN_OR_RETURN(*out, ReadSpilled(&db_->disk(), spilled));
    std::lock_guard<std::mutex> lock(mu_);
    spilled_pages_.push_back(list.pages);  // freed at End
    return Status::OK();
  }

  const PlanStep* FindStep(const std::string& name) const {
    auto it = steps_by_name_.find(name);
    if (it != steps_by_name_.end()) return it->second;
    for (const PlanStep& step : plan_.steps) {
      if (step.structure == name) return &step;
    }
    return nullptr;
  }

  ExecContext* ctx_;
  Database* db_;
  TableDef* table_;
  IndexDef* key_index_;
  BulkDeletePlan plan_;
  bool logging_;
  bool parallel_;
  /// Instruments resolved once from the database registry (stable pointers).
  obs::Histogram* idx_latch_hist_;
  obs::Histogram* leaf_reorg_hist_;
  obs::Counter* ckpt_inline_counter_;
  obs::Counter* ckpt_deferred_counter_;
  obs::Gauge* sidefile_depth_gauge_;
  obs::Histogram* sidefile_drain_hist_;
  obs::Histogram* sidefile_catchup_hist_;
  bool resuming_ = false;
  bool committed_ = false;
  bool exclusive_locked_ = false;
  uint64_t bd_id_ = 0;
  std::string key_column_fallback_;

  std::vector<int64_t> keys_;
  bool keys_sorted_ = false;
  /// Range predicate ([lo, hi] on the key column) — keys_ stays empty and
  /// the key/table passes run their leaf-run / extent-drop variants.
  bool is_range_ = false;
  int64_t range_lo_ = 0;
  int64_t range_hi_ = 0;
  /// Heap pages detached by the extent-drop pass (this run / recovered from
  /// kExtentDrop records); freed at finalize after the End record.
  std::vector<PageId> extent_pages_;
  std::vector<PageId> recovered_extent_pages_;
  /// Index nodes detached by the leaf-run pass (this run / recovered from
  /// kRangeLeafRun records); same deferred reclamation as extent pages —
  /// freeing them mid-statement would let a list spill reuse a page that
  /// stale on-disk tree pointers still reference (fatal after a crash).
  std::vector<PageId> dropped_leaf_pages_;
  std::vector<PageId> recovered_leaf_pages_;
  std::vector<Rid> rids_;
  bool rids_sorted_ = false;
  std::map<std::string, std::vector<KeyRid>> feeds_;
  std::vector<IndexDef*> secondaries_;
  std::map<std::string, const PlanStep*> steps_by_name_;

  /// Guards run state shared with concurrent secondary phases.
  mutable std::mutex mu_;
  std::set<std::string> done_;
  std::vector<std::string> deferred_checkpoints_;
  std::vector<std::vector<PageId>> spilled_pages_;
  /// Resume only: §3.1 updater ops recovered from kUpdaterRow records,
  /// replayed idempotently at finalize (once every index is back on-line),
  /// and orphaned side-file spill pages to reclaim after the End record.
  std::vector<RecoveredBulkDelete::UpdaterOp> updater_replay_;
  std::vector<PageId> recovered_sidefile_pages_;

  /// scrub_deleted_pages only: dead RIDs from the no-access-path scan (the
  /// other table passes leave them in rids_), and every page this statement
  /// freed — both consumed by ScrubAfterEnd.
  std::vector<Rid> scrub_rids_;
  std::vector<PageId> scrub_freed_pages_;

  BulkDeleteReport report_;

 public:
  void SetKeyColumnFallback(std::string column) {
    key_column_fallback_ = std::move(column);
  }
};

}  // namespace

Result<BulkDeleteReport> ExecuteVertical(ExecContext* ctx, TableDef* table,
                                         IndexDef* key_index,
                                         const BulkDeleteSpec& spec,
                                         const BulkDeletePlan& plan) {
  VerticalRun run(ctx, table, key_index, plan);
  run.SetKeyColumnFallback(spec.key_column);
  return run.Run(spec);
}

Result<BulkDeleteReport> ResumeVertical(Database* db,
                                        const RecoveredBulkDelete& state) {
  TableDef* table = db->GetTable(state.table);
  if (table == nullptr) {
    return Status::Corruption("recovered bulk delete names unknown table " +
                              state.table);
  }
  IndexDef* key_index = db->GetIndex(state.table, state.key_column);
  BulkDeleteSpec spec;
  spec.table = state.table;
  spec.key_column = state.key_column;
  uint64_t n_delete = state.lists.count("input-keys")
                          ? state.lists.at("input-keys").count
                          : 0;
  if (state.is_range && state.range_hi >= state.range_lo) {
    uint64_t width = static_cast<uint64_t>(state.range_hi) -
                     static_cast<uint64_t>(state.range_lo) + 1;
    n_delete = width == 0 ? table->table->tuple_count()
                          : std::min(width, table->table->tuple_count());
  }
  PlannerInput input = db->MakePlannerInput(table, key_index, n_delete, true);
  input.is_range = state.is_range;
  input.range_lo = state.range_lo;
  input.range_hi = state.range_hi;
  CostModel cost(db->options().disk_model, db->options().memory_budget_bytes);
  Planner planner(cost);
  BULKDEL_ASSIGN_OR_RETURN(
      BulkDeletePlan plan,
      planner.PlanFor(Strategy::kVerticalSortMerge, input));
  ExecContext ctx(db);
  VerticalRun run(&ctx, table, key_index, plan);
  run.SetKeyColumnFallback(state.key_column);
  return run.Resume(state);
}

}  // namespace bulkdel

// The paper's baseline: horizontal, record-at-a-time deletion. For every key
// in the delete list, the key index is probed root-to-leaf; the record is
// removed from the base table and then from *every* index individually
// before the next record is considered. Each index removal is another full
// root-to-leaf traversal — this is exactly the behaviour the paper measures
// as `traditional` (and, with a pre-sorted list, as `sorted/trad`).

#include "core/executors.h"
#include "sort/external_sort.h"

namespace bulkdel {

namespace {
/// Inner loop shared with the drop & create executor (which deletes
/// traditionally while only the key index remains).
Status TraditionalCore(TableDef* table, IndexDef* key_index,
                       const std::vector<int64_t>& keys, uint64_t* rows_out,
                       uint64_t* entries_out) {
  const Schema& schema = *table->schema;
  std::vector<char> tuple(schema.tuple_size());
  uint64_t rows = 0;
  uint64_t entries = 0;
  for (int64_t key : keys) {
    // One record at a time: find all matches for this key, then delete each
    // from the table and from every index before moving on.
    BULKDEL_ASSIGN_OR_RETURN(std::vector<Rid> rids,
                             key_index->tree->Search(key));
    for (const Rid& rid : rids) {
      BULKDEL_RETURN_IF_ERROR(table->table->Delete(rid, tuple.data()));
      ++rows;
      for (auto& index : table->indices) {
        int64_t index_key = schema.GetInt(
            tuple.data(), static_cast<size_t>(index->column));
        BULKDEL_RETURN_IF_ERROR(index->tree->Delete(index_key, rid));
        ++entries;
      }
    }
  }
  *rows_out = rows;
  *entries_out = entries;
  return Status::OK();
}

/// Materializes a range predicate's doomed keys from the key index. Must run
/// inside the statement's exclusive table lock — evaluating the predicate any
/// earlier would race concurrent inserts into the range (the extract-then-
/// execute race the range predicate class exists to close).
Result<std::vector<int64_t>> RangeKeys(IndexDef* key_index,
                                       const BulkDeleteSpec& spec) {
  std::vector<int64_t> keys;
  if (spec.range_empty()) return keys;
  BULKDEL_RETURN_IF_ERROR(key_index->tree->RangeScan(
      spec.range_lo, spec.range_hi, [&](int64_t key, const Rid&) {
        if (keys.empty() || keys.back() != key) keys.push_back(key);
        return Status::OK();
      }));
  return keys;
}

Status FinalizeStructures(ExecContext* ctx, TableDef* table) {
  PhaseScope scope(ctx, "finalize");
  BULKDEL_RETURN_IF_ERROR(table->table->FlushMeta());
  for (auto& index : table->indices) {
    BULKDEL_RETURN_IF_ERROR(index->tree->FlushMeta());
  }
  return ctx->db()->pool().FlushAll();
}
}  // namespace

Result<BulkDeleteReport> ExecuteTraditional(ExecContext* ctx, TableDef* table,
                                            IndexDef* key_index,
                                            const BulkDeleteSpec& spec,
                                            bool sort_first) {
  Database* db = ctx->db();
  BulkDeleteReport report;
  report.strategy_used =
      sort_first ? Strategy::kTraditionalSorted : Strategy::kTraditional;
  Stopwatch total;

  db->locks().LockExclusive(table->name);
  Status status = [&]() -> Status {
    std::vector<int64_t> keys = spec.keys;
    if (spec.is_range()) {
      // Ranges materialize under the lock and arrive in key order already.
      PhaseScope scope(ctx, "range-scan-keys");
      BULKDEL_ASSIGN_OR_RETURN(keys, RangeKeys(key_index, spec));
      scope.set_items(keys.size());
    } else if (sort_first && !spec.keys_sorted) {
      PhaseScope scope(ctx, "sort-keys");
      BULKDEL_RETURN_IF_ERROR(SortKeys(
          &db->disk(), db->options().memory_budget_bytes, &keys));
      scope.set_items(keys.size());
    }
    {
      PhaseScope scope(ctx, "record-at-a-time");
      uint64_t rows = 0, entries = 0;
      BULKDEL_RETURN_IF_ERROR(
          TraditionalCore(table, key_index, keys, &rows, &entries));
      scope.set_items(rows);
      report.rows_deleted = rows;
      report.index_entries_deleted = entries;
    }
    return FinalizeStructures(ctx, table);
  }();
  db->locks().UnlockExclusive(table->name);
  BULKDEL_RETURN_IF_ERROR(status);

  report.phases = ctx->TakePhases();
  report.io = ctx->AttributedTotal();
  report.wall_micros = total.ElapsedMicros();
  return report;
}

Result<BulkDeleteReport> ExecuteDropCreate(ExecContext* ctx, TableDef* table,
                                           IndexDef* key_index,
                                           const BulkDeleteSpec& spec) {
  Database* db = ctx->db();
  BulkDeleteReport report;
  report.strategy_used = Strategy::kDropCreate;
  Stopwatch total;

  db->locks().LockExclusive(table->name);
  Status status = [&]() -> Status {
    // Remember and drop every secondary index; the key index must stay — it
    // is the access path that locates the records to delete.
    struct DroppedDef {
      std::string column;
      IndexOptions options;
      bool clustered;
    };
    std::vector<DroppedDef> dropped;
    {
      PhaseScope scope(ctx, "drop-indexes");
      for (auto& index : table->indices) {
        if (index.get() == key_index) continue;
        dropped.push_back(DroppedDef{
            table->schema->column(static_cast<size_t>(index->column)).name,
            index->options, index->clustered});
      }
      for (const DroppedDef& d : dropped) {
        BULKDEL_RETURN_IF_ERROR(db->DropIndex(table->name, d.column));
      }
      scope.set_items(dropped.size());
    }

    // Traditional (sorted) delete against the remaining structures.
    std::vector<int64_t> keys = spec.keys;
    if (spec.is_range()) {
      PhaseScope scope(ctx, "range-scan-keys");
      BULKDEL_ASSIGN_OR_RETURN(keys, RangeKeys(key_index, spec));
      scope.set_items(keys.size());
    } else if (!spec.keys_sorted) {
      PhaseScope scope(ctx, "sort-keys");
      BULKDEL_RETURN_IF_ERROR(SortKeys(
          &db->disk(), db->options().memory_budget_bytes, &keys));
      scope.set_items(keys.size());
    }
    {
      PhaseScope scope(ctx, "delete");
      uint64_t rows = 0, entries = 0;
      BULKDEL_RETURN_IF_ERROR(
          TraditionalCore(table, key_index, keys, &rows, &entries));
      scope.set_items(rows);
      report.rows_deleted = rows;
      report.index_entries_deleted = entries;
    }

    // Rebuild each dropped index: scan, external sort, bulk load.
    for (const DroppedDef& d : dropped) {
      PhaseScope scope(ctx, "rebuild:" + table->name + "." + d.column,
                       "delete");
      BULKDEL_ASSIGN_OR_RETURN(
          IndexDef * index,
          db->CreateIndex(table->name, d.column, d.options, d.clustered));
      int column = index->column;
      ExternalSorter<KeyRid> sorter(&db->disk(),
                                    db->options().memory_budget_bytes);
      const Schema& schema = *table->schema;
      BULKDEL_RETURN_IF_ERROR(
          table->table->Scan([&](const Rid& rid, const char* tuple) {
            return sorter.Add(KeyRid(
                schema.GetInt(tuple, static_cast<size_t>(column)), rid));
          }));
      BULKDEL_ASSIGN_OR_RETURN(std::vector<KeyRid> entries_sorted,
                               sorter.FinishToVector());
      BULKDEL_RETURN_IF_ERROR(index->tree->BulkLoad(entries_sorted));
      scope.set_items(entries_sorted.size());
    }
    return FinalizeStructures(ctx, table);
  }();
  db->locks().UnlockExclusive(table->name);
  BULKDEL_RETURN_IF_ERROR(status);

  report.phases = ctx->TakePhases();
  report.io = ctx->AttributedTotal();
  report.wall_micros = total.ElapsedMicros();
  return report;
}

}  // namespace bulkdel

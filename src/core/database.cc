#include "core/database.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>

#include <algorithm>

#include "core/constraints.h"
#include "core/executors.h"
#include "obs/trace_recorder.h"
#include "recovery/recovery_manager.h"
#include "sort/external_sort.h"

namespace bulkdel {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {
  // Back-compat: a non-empty path always meant file backing.
  if (!options_.path.empty()) options_.backend = StorageBackend::kFile;
}

Status Database::WireStorage(bool truncate) {
  if (options_.backend == StorageBackend::kFile) {
    if (options_.path.empty()) {
      return Status::InvalidArgument(
          "file storage backend requires DatabaseOptions::path");
    }
    if (::mkdir(options_.path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("mkdir " + options_.path + ": " +
                             std::strerror(errno));
    }
    disk_ = std::make_unique<DiskManager>(options_.path + "/pages.db",
                                          truncate, options_.disk_model);
    log_ = std::make_unique<LogManager>(options_.path + "/wal.log", truncate);
    BULKDEL_RETURN_IF_ERROR(log_->open_status());
  } else {
    disk_ = std::make_unique<DiskManager>(options_.disk_model);
    log_ = std::make_unique<LogManager>();
  }
  log_->SetGroupCommit(options_.wal_group_commit);
  BufferPoolOptions pool_options;
  pool_options.budget_bytes = options_.memory_budget_bytes;
  // Auto shard choice: parallel phases want striping, the serial executor
  // gains nothing from it.
  pool_options.shards = options_.pool_shards != 0
                            ? options_.pool_shards
                            : (options_.exec_threads > 1 ? 8 : 1);
  pool_options.readahead_pages = options_.readahead_pages;
  pool_options.coalesce_writebacks = options_.coalesce_writebacks;
  pool_ = std::make_unique<BufferPool>(disk_.get(), pool_options);
  catalog_ = std::make_unique<Catalog>(pool_.get());
  locks_ = std::make_unique<LockManager>();
  if (options_.fault_injector != nullptr) {
    FaultInjector* injector = options_.fault_injector.get();
    disk_->SetFaultInjector(injector);
    pool_->SetFaultInjector(injector);
    log_->SetFaultInjector(injector);
  }
  // Metric wiring: storage objects resolve their instruments once and then
  // update through raw pointers; the registry lives in the Database.
  disk_->SetMetrics(&metrics_);
  pool_->SetMetrics(&metrics_);
  log_->SetMetrics(&metrics_);
  sidefile_appends_counter_ =
      metrics_.counter(obs::metric_names::kSideFileAppends);
  sidefile_spill_pages_counter_ =
      metrics_.counter(obs::metric_names::kSideFileSpillPages);
  if (options_.trace_spans) {
    obs::TraceRecorder::Global().SetEnabled(true);
  }
  if (options_.enable_recovery_log) {
    LogManager* log = log_.get();
    pool_->SetPreWritebackHook([log] { log->Sync(); });
  }
  return Status::OK();
}

Result<std::unique_ptr<Database>> Database::Create(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  BULKDEL_RETURN_IF_ERROR(db->WireStorage(/*truncate=*/true));
  BULKDEL_RETURN_IF_ERROR(db->catalog_->Format());
  return db;
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("Database::Open requires a path");
  }
  options.backend = StorageBackend::kFile;
  std::unique_ptr<Database> db(new Database(std::move(options)));
  BULKDEL_RETURN_IF_ERROR(db->WireStorage(/*truncate=*/false));
  if (db->disk_->NumAllocatedPages() == 0) {
    return Status::NotFound("no database at " + db->options_.path);
  }
  // The catalog root is page 0 by construction (Format's first allocation).
  BULKDEL_RETURN_IF_ERROR(db->catalog_->Load(0));
  // Roll any bulk delete the previous process left interrupted forward
  // (§3.2). A cleanly closed database has an empty WAL and this is a no-op.
  BULKDEL_RETURN_IF_ERROR(RecoverDatabase(db.get()));
  return db;
}

Status Database::Close() {
  BULKDEL_RETURN_IF_ERROR(Checkpoint());
  return disk_->MarkCleanShutdown();
}

Result<TableDef*> Database::CreateTable(const std::string& name,
                                        const Schema& schema) {
  return catalog_->CreateTable(name, schema);
}

Result<IndexDef*> Database::CreateIndex(const std::string& table,
                                        const std::string& column,
                                        IndexOptions options, bool clustered) {
  BULKDEL_ASSIGN_OR_RETURN(
      IndexDef * index, catalog_->CreateIndex(table, column, options,
                                              clustered));
  // Backfill from existing rows: scan, external sort, bulk load — the same
  // pipeline the drop & create executor uses to rebuild indices.
  TableDef* t = GetTable(table);
  if (t->table->tuple_count() > 0) {
    const Schema& schema = *t->schema;
    int col = index->column;
    ExternalSorter<KeyRid> sorter(disk_.get(), options_.memory_budget_bytes);
    BULKDEL_RETURN_IF_ERROR(
        t->table->Scan([&](const Rid& rid, const char* tuple) {
          return sorter.Add(
              KeyRid(schema.GetInt(tuple, static_cast<size_t>(col)), rid));
        }));
    BULKDEL_ASSIGN_OR_RETURN(std::vector<KeyRid> entries,
                             sorter.FinishToVector());
    if (options.unique) {
      for (size_t i = 1; i < entries.size(); ++i) {
        if (entries[i].key == entries[i - 1].key) {
          Status drop = index->tree->Drop();
          (void)drop;
          BULKDEL_RETURN_IF_ERROR(catalog_->RemoveIndex(table, column));
          return Status::FailedPrecondition(
              "cannot create unique index: duplicate value " +
              std::to_string(entries[i].key));
        }
      }
    }
    BULKDEL_RETURN_IF_ERROR(index->tree->BulkLoad(entries));
  }
  return index;
}

Status Database::DropIndex(const std::string& table,
                           const std::string& column) {
  IndexDef* index = catalog_->GetIndex(table, column);
  if (index == nullptr) {
    return Status::NotFound("no index on " + table + "." + column);
  }
  // A unique index backing a foreign key's parent side is load-bearing.
  TableDef* t = GetTable(table);
  for (const ForeignKeyDef& fk : catalog_->foreign_keys()) {
    if (fk.parent_table == table && fk.parent_column == index->column) {
      return Status::FailedPrecondition(
          "index " + index->name + " backs foreign key " + fk.Name());
    }
  }
  (void)t;
  BULKDEL_RETURN_IF_ERROR(index->tree->Drop());
  return catalog_->RemoveIndex(table, column);
}

bool Database::TrySideFileAppend(IndexDef* index, const SideFileOp& op,
                                 Status* status) {
  IndexConcurrencyState* cc = index->cc.get();
  while (cc->mode.load(std::memory_order_acquire) ==
         IndexMode::kOfflineSideFile) {
    if (!cc->side_file.TryEnterAppend()) {
      // Quiesce in progress: the mode is about to flip on-line. Spin on the
      // mode re-check rather than the gate — once the flip lands we fall
      // through to the direct path.
      std::this_thread::yield();
      continue;
    }
    // Admitted. The flip happens inside the quiesce window (which waits for
    // us), so the mode cannot change while we hold the gate — but it may
    // have flipped before we entered; re-check.
    if (cc->mode.load(std::memory_order_acquire) !=
        IndexMode::kOfflineSideFile) {
      cc->side_file.ExitAppend();
      break;
    }
    Status fault = CheckFault(fault_sites::kTxnSideFileAppend, index->name);
    if (!fault.ok()) {
      cc->side_file.ExitAppend();
      *status = fault;
      return true;
    }
    std::vector<PageId> spilled;
    Status s = cc->side_file.Append(op, &spilled);
    cc->side_file.ExitAppend();
    if (s.ok()) {
      sidefile_appends_counter_->Add(1);
      if (!spilled.empty()) {
        sidefile_spill_pages_counter_->Add(
            static_cast<int64_t>(spilled.size()));
      }
      uint64_t bd_id = updater_logging_id();
      if (bd_id != 0) {
        // Diagnostics only: replay is driven by kUpdaterRow records. The
        // spill record lets recovery reclaim the scratch pages.
        LogRecord append_rec;
        append_rec.type = LogRecordType::kSideFileAppend;
        append_rec.bd_id = bd_id;
        append_rec.label = index->name;
        log_->Append(std::move(append_rec));
        if (!spilled.empty()) {
          LogRecord spill_rec;
          spill_rec.type = LogRecordType::kSideFileSpill;
          spill_rec.bd_id = bd_id;
          spill_rec.label = index->name;
          spill_rec.pages = std::move(spilled);
          log_->Append(std::move(spill_rec));
        }
      }
    }
    *status = s;
    return true;
  }
  return false;
}

Status Database::ApplyIndexInsert(TableDef* table, IndexDef* index,
                                  int64_t key, const Rid& rid) {
  (void)table;
  Status side_file_status;
  if (TrySideFileAppend(index, SideFileOp{/*is_insert=*/true, key, rid},
                        &side_file_status)) {
    return side_file_status;
  }
  std::lock_guard<std::mutex> latch(index->cc->latch);
  // Decide the undeletable marker from the mode *under the latch*:
  // BringOnline clears the markers and flips the mode under this same
  // latch, so an insert can no longer slip a marked entry in after the
  // clearing pass ran.
  uint16_t flags =
      index->cc->mode.load(std::memory_order_acquire) ==
              IndexMode::kOfflineDirect
          ? BTreeNode::kEntryUndeletable
          : 0;
  if (flags != 0) {
    index->cc->undeletable_marks.fetch_add(1, std::memory_order_relaxed);
  }
  return index->tree->Insert(key, rid, flags);
}

Status Database::ApplyIndexDelete(TableDef* table, IndexDef* index,
                                  int64_t key, const Rid& rid) {
  (void)table;
  Status side_file_status;
  if (TrySideFileAppend(index, SideFileOp{/*is_insert=*/false, key, rid},
                        &side_file_status)) {
    return side_file_status;
  }
  std::lock_guard<std::mutex> latch(index->cc->latch);
  Status s = index->tree->Delete(key, rid);
  // A NotFound here can only mean the bulk deleter got to the entry first
  // (or a side-file replay raced a fresh delete); the end state is the same.
  if (s.IsNotFound()) return Status::OK();
  return s;
}

Result<Rid> Database::InsertRow(const std::string& table_name,
                                const std::vector<int64_t>& int_values) {
  TableDef* t = GetTable(table_name);
  if (t == nullptr) return Status::NotFound("no table " + table_name);
  std::vector<char> tuple(t->schema->tuple_size(), 0);
  size_t vi = 0;
  for (size_t c = 0; c < t->schema->num_columns(); ++c) {
    if (t->schema->column(c).type != ColumnType::kInt64) continue;
    if (vi >= int_values.size()) {
      return Status::InvalidArgument("too few values for " + table_name);
    }
    t->schema->SetInt(tuple.data(), c, int_values[vi++]);
  }
  if (vi != int_values.size()) {
    return Status::InvalidArgument("too many values for " + table_name);
  }

  LockManager::SharedGuard lock(locks_.get(), table_name);
  BULKDEL_RETURN_IF_ERROR(CheckAlive());
  BULKDEL_RETURN_IF_ERROR(CheckChildInsert(this, t, tuple.data()));
  const uint64_t bd_id = updater_logging_id();
  if (bd_id != 0) {
    // Pre-check unique indices before logging the row record, so a plain
    // unique violation does not leave a kUpdaterRow record that recovery
    // would replay. (Unique indices stay on-line during the §3.1 window —
    // they are processed under the exclusive table lock before commit.)
    for (auto& index : t->indices) {
      if (!index->options.unique) continue;
      int64_t key =
          t->schema->GetInt(tuple.data(), static_cast<size_t>(index->column));
      std::lock_guard<std::mutex> latch(index->cc->latch);
      BULKDEL_ASSIGN_OR_RETURN(std::vector<Rid> hits,
                               index->tree->Search(key));
      if (!hits.empty()) {
        return Status::AlreadyExists("duplicate key " + std::to_string(key) +
                                     " in unique index " + index->name);
      }
    }
  }
  Rid rid;
  {
    std::lock_guard<std::mutex> heap(t->heap_latch);
    if (bd_id != 0) {
      // Record-before-mutation: predict the RID and log the whole row
      // first, so any durable partial effect implies a durable record (the
      // pool's pre-writeback hook syncs the log ahead of every page write).
      BULKDEL_ASSIGN_OR_RETURN(Rid predicted, t->table->PeekInsertRid());
      LogRecord rec;
      rec.type = LogRecordType::kUpdaterRow;
      rec.bd_id = bd_id;
      rec.label = table_name;
      rec.count = 1;  // insert
      rec.rid = predicted;
      rec.values = int_values;
      log_->Append(std::move(rec));
      BULKDEL_ASSIGN_OR_RETURN(rid, t->table->Insert(tuple.data()));
      if (!(rid == predicted)) {
        return Status::Internal("updater insert RID drifted from the " +
                                std::string("logged prediction"));
      }
    } else {
      BULKDEL_ASSIGN_OR_RETURN(rid, t->table->Insert(tuple.data()));
    }
  }
  Status index_status;
  size_t applied = 0;
  for (auto& index : t->indices) {
    int64_t key =
        t->schema->GetInt(tuple.data(), static_cast<size_t>(index->column));
    index_status = ApplyIndexInsert(t, index.get(), key, rid);
    if (!index_status.ok()) break;
    ++applied;
  }
  if (!index_status.ok()) {
    // Undo the already-applied index entries *and* the heap row, so a
    // failure midway leaves no orphans (the old path leaked entries into
    // the indices that had already accepted the key).
    for (size_t i = 0; i < applied; ++i) {
      auto& index = t->indices[i];
      int64_t key =
          t->schema->GetInt(tuple.data(), static_cast<size_t>(index->column));
      (void)ApplyIndexDelete(t, index.get(), key, rid);
    }
    std::lock_guard<std::mutex> heap(t->heap_latch);
    (void)t->table->Delete(rid);
    return index_status;
  }
  if (bd_id != 0) {
    // OK must imply durable: force the row record out, and refuse to
    // acknowledge if the process "died" during that sync.
    log_->Sync();
    BULKDEL_RETURN_IF_ERROR(CheckAlive());
  }
  return rid;
}

Status Database::DeleteRow(const std::string& table_name, const Rid& rid) {
  std::set<std::string> cascade_path;
  return DeleteRowWithCascadePath(table_name, rid, &cascade_path);
}

Status Database::DeleteRowWithCascadePath(
    const std::string& table_name, const Rid& rid,
    std::set<std::string>* cascade_path) {
  TableDef* t = GetTable(table_name);
  if (t == nullptr) return Status::NotFound("no table " + table_name);
  LockManager::SharedGuard lock(locks_.get(), table_name);
  BULKDEL_RETURN_IF_ERROR(CheckAlive());
  std::vector<char> tuple(t->schema->tuple_size());
  {
    std::lock_guard<std::mutex> heap(t->heap_latch);
    BULKDEL_RETURN_IF_ERROR(t->table->Get(rid, tuple.data()));
  }
  // Phase A, read-only: every RESTRICT — direct or reached through a
  // CASCADE chain — is evaluated here, before any mutation, so a violation
  // leaves every table untouched regardless of the FKs' catalog order.
  std::vector<RowCascadeTarget> targets;
  BULKDEL_RETURN_IF_ERROR(
      PlanParentRowDelete(this, t, tuple.data(), cascade_path, &targets));
  // Phase B: deepest descendants first, then this row. A RID an earlier
  // overlapping leg already removed (diamond fan-out) is tolerated.
  for (const RowCascadeTarget& target : targets) {
    for (const Rid& child_rid : target.rids) {
      BULKDEL_RETURN_IF_ERROR(
          DeleteRowNoFk(target.table, child_rid, /*missing_ok=*/true));
    }
  }
  return DeleteRowNoFk(table_name, rid, /*missing_ok=*/false);
}

Status Database::DeleteRowNoFk(const std::string& table_name, const Rid& rid,
                               bool missing_ok) {
  TableDef* t = GetTable(table_name);
  if (t == nullptr) return Status::NotFound("no table " + table_name);
  LockManager::SharedGuard lock(locks_.get(), table_name);
  BULKDEL_RETURN_IF_ERROR(CheckAlive());
  std::vector<char> tuple(t->schema->tuple_size());
  {
    std::lock_guard<std::mutex> heap(t->heap_latch);
    Status get = t->table->Get(rid, tuple.data());
    if (get.IsNotFound() && missing_ok) return Status::OK();
    BULKDEL_RETURN_IF_ERROR(get);
  }
  const uint64_t bd_id = updater_logging_id();
  {
    std::lock_guard<std::mutex> heap(t->heap_latch);
    if (bd_id != 0) {
      // Record-before-mutation, mirroring InsertRow: the full row goes into
      // the record so recovery can re-derive every index key.
      LogRecord rec;
      rec.type = LogRecordType::kUpdaterRow;
      rec.bd_id = bd_id;
      rec.label = table_name;
      rec.count = 0;  // delete
      rec.rid = rid;
      for (size_t c = 0; c < t->schema->num_columns(); ++c) {
        if (t->schema->column(c).type == ColumnType::kInt64) {
          rec.values.push_back(t->schema->GetInt(tuple.data(), c));
        }
      }
      log_->Append(std::move(rec));
    }
    {
      Status del = t->table->Delete(rid);
      if (del.IsNotFound() && missing_ok) return Status::OK();
      BULKDEL_RETURN_IF_ERROR(del);
    }
    if (options_.scrub_deleted_pages) {
      // Verified erasure: zero the dead slot's bytes while still under the
      // heap latch. Safe before the statement completes — the kUpdaterRow
      // record above carries the full row, and recovery never reads dead
      // slot bytes.
      (void)t->table->ScrubDeadSlots({rid}, /*skip_pages=*/{});
    }
  }
  for (auto& index : t->indices) {
    int64_t key =
        t->schema->GetInt(tuple.data(), static_cast<size_t>(index->column));
    BULKDEL_RETURN_IF_ERROR(ApplyIndexDelete(t, index.get(), key, rid));
  }
  if (bd_id != 0) {
    log_->Sync();
    BULKDEL_RETURN_IF_ERROR(CheckAlive());
  }
  return Status::OK();
}

Status Database::AddForeignKey(const std::string& child_table,
                               const std::string& child_column,
                               const std::string& parent_table,
                               const std::string& parent_column,
                               FkAction action) {
  // Validate existing data before registering: every child value must have
  // a parent row — done set-at-a-time with one merge lookup.
  TableDef* child = GetTable(child_table);
  TableDef* parent = GetTable(parent_table);
  if (child == nullptr || parent == nullptr) {
    return Status::NotFound("foreign key references unknown table");
  }
  int child_col = child->schema->FindColumn(child_column);
  int parent_col = parent->schema->FindColumn(parent_column);
  if (child_col < 0 || parent_col < 0) {
    return Status::NotFound("foreign key references unknown column");
  }
  IndexDef* parent_index = parent->FindIndexOnColumn(parent_col);
  if (parent_index == nullptr || !parent_index->options.unique) {
    return Status::FailedPrecondition(
        "foreign key parent column must carry a unique index");
  }
  std::vector<int64_t> child_values;
  child_values.reserve(child->table->tuple_count());
  const Schema& schema = *child->schema;
  BULKDEL_RETURN_IF_ERROR(
      child->table->Scan([&](const Rid&, const char* tuple) {
        child_values.push_back(
            schema.GetInt(tuple, static_cast<size_t>(child_col)));
        return Status::OK();
      }));
  std::sort(child_values.begin(), child_values.end());
  child_values.erase(
      std::unique(child_values.begin(), child_values.end()),
      child_values.end());
  BULKDEL_ASSIGN_OR_RETURN(
      uint64_t matched,
      parent_index->tree->CountMatchingSortedKeys(child_values));
  if (matched != child_values.size()) {
    return Status::FailedPrecondition(
        "existing data violates foreign key: " +
        std::to_string(child_values.size() - matched) +
        " child value(s) without parent");
  }
  return catalog_->AddForeignKey(child_table, child_column, parent_table,
                                 parent_column, action);
}

Result<std::vector<int64_t>> Database::GetRow(const std::string& table_name,
                                              const Rid& rid) {
  TableDef* t = GetTable(table_name);
  if (t == nullptr) return Status::NotFound("no table " + table_name);
  LockManager::SharedGuard lock(locks_.get(), table_name);
  std::vector<char> tuple(t->schema->tuple_size());
  {
    std::lock_guard<std::mutex> heap(t->heap_latch);
    BULKDEL_RETURN_IF_ERROR(t->table->Get(rid, tuple.data()));
  }
  std::vector<int64_t> values;
  for (size_t c = 0; c < t->schema->num_columns(); ++c) {
    if (t->schema->column(c).type == ColumnType::kInt64) {
      values.push_back(t->schema->GetInt(tuple.data(), c));
    }
  }
  return values;
}

PlannerInput Database::MakePlannerInput(TableDef* table, IndexDef* key_index,
                                        uint64_t n_delete,
                                        bool keys_sorted) const {
  PlannerInput input;
  input.table.tuples = table->table->tuple_count();
  input.table.pages = table->table->num_data_pages();
  input.table.tuples_per_page =
      std::max<uint32_t>(1, HeapPageTuplesPerPage(table));
  input.n_delete = n_delete;
  input.keys_sorted = keys_sorted;
  for (const auto& index : table->indices) {
    IndexInfo info;
    info.name = index->name;
    info.column = index->column;
    info.entries = index->tree->entry_count();
    info.leaves = index->tree->num_leaves();
    info.height = index->tree->height();
    info.unique = index->options.unique;
    info.priority = index->options.priority;
    info.clustered = index->clustered;
    info.is_key_index = key_index != nullptr && index.get() == key_index;
    input.indices.push_back(std::move(info));
  }
  return input;
}

uint32_t Database::HeapPageTuplesPerPage(TableDef* table) {
  uint32_t pages = table->table->num_data_pages();
  if (pages == 0) return 1;
  return static_cast<uint32_t>(table->table->tuple_count() / pages);
}

Result<BulkDeletePlan> Database::ExplainBulkDelete(const BulkDeleteSpec& spec,
                                                   Strategy strategy) {
  TableDef* t = GetTable(spec.table);
  if (t == nullptr) return Status::NotFound("no table " + spec.table);
  IndexDef* key_index = catalog_->GetIndex(spec.table, spec.key_column);
  uint64_t n_delete = spec.keys.size();
  if (spec.is_range()) {
    // Width estimate clamped to the table size; an inverted range dooms
    // nothing. The unsigned subtraction is overflow-safe for any lo <= hi.
    if (spec.range_empty()) {
      n_delete = 0;
    } else {
      uint64_t width = static_cast<uint64_t>(spec.range_hi) -
                       static_cast<uint64_t>(spec.range_lo) + 1;
      n_delete = width == 0 ? t->table->tuple_count()
                            : std::min(width, t->table->tuple_count());
    }
  }
  PlannerInput input =
      MakePlannerInput(t, key_index, n_delete, spec.keys_sorted);
  input.is_range = spec.is_range();
  input.range_lo = spec.range_lo;
  input.range_hi = spec.range_hi;
  CostModel cost(options_.disk_model, options_.memory_budget_bytes);
  Planner planner(cost);
  return planner.PlanFor(strategy, input);
}

Result<BulkDeleteReport> Database::BulkDelete(const BulkDeleteSpec& spec,
                                              Strategy strategy) {
  // One bulk-delete statement at a time. The §3.1 window is per-statement
  // global state (active_bd_id_, per-index off-line modes, the recovery
  // WAL's bd_id namespace), so overlapping statements from concurrent
  // network sessions must queue here — record-at-a-time DML and reads stay
  // fully concurrent through the lock manager. Cascades re-enter through
  // BulkDeleteWithCascadePath and stay inside their parent's turn.
  std::lock_guard<std::mutex> statement(bulk_delete_statement_mu_);
  std::set<std::string> cascade_path;
  return BulkDeleteWithCascadePath(spec, strategy, &cascade_path);
}

Result<BulkDeleteReport> Database::ExecuteBulkDeletePlanned(
    ExecContext* ctx, const BulkDeleteSpec& spec, Strategy strategy) {
  TableDef* t = GetTable(spec.table);
  if (t == nullptr) return Status::NotFound("no table " + spec.table);
  IndexDef* key_index = catalog_->GetIndex(spec.table, spec.key_column);
  BULKDEL_ASSIGN_OR_RETURN(BulkDeletePlan plan,
                           ExplainBulkDelete(spec, strategy));
  Result<BulkDeleteReport> result = [&]() -> Result<BulkDeleteReport> {
    switch (plan.strategy) {
      case Strategy::kTraditional:
        if (key_index == nullptr) {
          return Status::FailedPrecondition(
              "traditional delete requires an index on " + spec.key_column);
        }
        return ExecuteTraditional(ctx, t, key_index, spec,
                                  /*sort_first=*/false);
      case Strategy::kTraditionalSorted:
        if (key_index == nullptr) {
          return Status::FailedPrecondition(
              "traditional delete requires an index on " + spec.key_column);
        }
        return ExecuteTraditional(ctx, t, key_index, spec,
                                  /*sort_first=*/true);
      case Strategy::kDropCreate:
        if (key_index == nullptr) {
          return Status::FailedPrecondition(
              "drop & create requires an index on " + spec.key_column);
        }
        return ExecuteDropCreate(ctx, t, key_index, spec);
      case Strategy::kVerticalSortMerge:
      case Strategy::kVerticalHash:
      case Strategy::kVerticalPartitionedHash:
        return ExecuteVertical(ctx, t, key_index, spec, plan);
      case Strategy::kOptimizer:
        return Status::Internal("planner returned unresolved strategy");
    }
    return Status::InvalidArgument("unknown strategy");
  }();
  if (result.ok()) {
    result->backend =
        storage_backend() == StorageBackend::kFile ? "file" : "sim";
    if (result->plan_explain.empty()) result->plan_explain = plan.Explain();
  }
  return result;
}

Result<BulkDeleteReport> Database::BulkDeleteWithCascadePath(
    const BulkDeleteSpec& spec, Strategy strategy,
    std::set<std::string>* cascade_path) {
  TableDef* t = GetTable(spec.table);
  if (t == nullptr) return Status::NotFound("no table " + spec.table);

  // One execution context per statement: phase trace, per-phase I/O
  // attribution and the cancel flag. Created before FK planning so the
  // fk-plan / cascade phases land in the statement's trace.
  ExecContext ctx(this);
  std::vector<BufferPoolStats> pool_before = pool_->shard_stats();
  obs::MetricsSnapshot metrics_before = metrics_.Snapshot();

  // Phase A, read-only (§2.1 done right): derive the doomed value set once,
  // evaluate EVERY RESTRICT — including those reached through CASCADE
  // chains — and only then emit the cascade plan. A violation aborts here
  // with nothing to undo, regardless of FK catalog order.
  bool has_fks = false;
  for (const ForeignKeyDef& fk : catalog_->foreign_keys()) {
    if (fk.parent_table == spec.table) {
      has_fks = true;
      break;
    }
  }
  CascadePlan fk_plan;
  if (has_fks) {
    PhaseScope fk_scope(&ctx, "fk-plan");
    cascade_path->insert(spec.table);
    Status plan_status =
        PlanForeignKeysForBulkDelete(this, t, spec, cascade_path, &fk_plan);
    cascade_path->erase(spec.table);
    BULKDEL_RETURN_IF_ERROR(plan_status);
    fk_scope.set_items(fk_plan.TotalKeys());
  }

  // Phase B: the cascade legs run as plain (FK-less) vertical bulk deletes,
  // deepest descendants first, reusing the shared sorted value lists. Each
  // leg gets its own child context (per-leg I/O attribution); the enclosing
  // cascade:<table> scope stamps the statement's live phase label.
  uint64_t cascaded_rows = 0;
  std::vector<CascadeTableRows> cascade_tables;
  IoStats cascade_io;
  uint64_t cascade_index_entries = 0;
  for (const CascadeChildDelete& leg : fk_plan.children) {
    PhaseScope leg_scope(&ctx, "cascade:" + leg.table);
    BulkDeleteSpec leg_spec;
    leg_spec.table = leg.table;
    leg_spec.key_column = leg.key_column;
    leg_spec.keys = leg.keys;
    leg_spec.keys_sorted = true;
    Result<BulkDeleteReport> leg_result = [&]() -> Result<BulkDeleteReport> {
      ExecContext leg_ctx(this);
      return ExecuteBulkDeletePlanned(&leg_ctx, leg_spec, strategy);
    }();
    BULKDEL_RETURN_IF_ERROR(leg_result.status());
    cascaded_rows += leg_result->rows_deleted;
    cascade_io += leg_result->io;
    cascade_index_entries += leg_result->index_entries_deleted;
    cascade_tables.push_back(CascadeTableRows{leg.table,
                                              leg_result->rows_deleted});
    leg_scope.set_items(leg_result->rows_deleted);
  }

  Result<BulkDeleteReport> result =
      ExecuteBulkDeletePlanned(&ctx, spec, strategy);
  if (result.ok()) {
    result->cascaded_rows = cascaded_rows;
    result->cascade_tables = std::move(cascade_tables);
    // The statement total includes what its cascade legs did (each leg's
    // context attributed its own I/O; fold it back in here).
    result->io += cascade_io;
    result->index_entries_deleted += cascade_index_entries;
    std::vector<BufferPoolStats> pool_after = pool_->shard_stats();
    result->pool_shards.resize(pool_after.size());
    result->pool = BufferPoolStats();
    for (size_t s = 0; s < pool_after.size(); ++s) {
      result->pool_shards[s] = pool_after[s] - pool_before[s];
      result->pool += result->pool_shards[s];
    }
    result->metrics = metrics_.Snapshot() - metrics_before;
  }
  return result;
}

Status Database::Checkpoint() {
  for (TableDef* t : catalog_->tables()) {
    BULKDEL_RETURN_IF_ERROR(t->table->FlushMeta());
    for (auto& index : t->indices) {
      BULKDEL_RETURN_IF_ERROR(index->tree->FlushMeta());
    }
  }
  BULKDEL_RETURN_IF_ERROR(catalog_->Persist());
  log_->Sync();
  BULKDEL_RETURN_IF_ERROR(pool_->FlushAll());
  log_->Sync();
  // Durability barrier: the flushed pages must be on the medium before the
  // checkpoint counts (fsync with the file backend; the sim backend charges
  // the same fault site so sweep coverage is identical).
  return disk_->Flush();
}

Status Database::VerifyIntegrity() {
  for (TableDef* t : catalog_->tables()) {
    // Collect live rows once.
    std::map<uint64_t, std::vector<char>> rows;
    BULKDEL_RETURN_IF_ERROR(t->table->Scan([&](const Rid& rid,
                                               const char* tuple) {
      rows.emplace(rid.Pack(),
                   std::vector<char>(tuple, tuple + t->schema->tuple_size()));
      return Status::OK();
    }));
    if (rows.size() != t->table->tuple_count()) {
      return Status::Corruption("table " + t->name + " count mismatch");
    }
    for (auto& index : t->indices) {
      BULKDEL_RETURN_IF_ERROR(index->tree->CheckInvariants());
      if (index->tree->entry_count() != rows.size()) {
        return Status::Corruption(
            "index " + index->name + " has " +
            std::to_string(index->tree->entry_count()) + " entries, table " +
            std::to_string(rows.size()) + " rows");
      }
      uint64_t checked = 0;
      Status s = index->tree->ScanAll([&](int64_t key, const Rid& rid,
                                          uint16_t) {
        auto it = rows.find(rid.Pack());
        if (it == rows.end()) {
          return Status::Corruption("index " + index->name +
                                    " points at dead RID " + rid.ToString());
        }
        int64_t actual = t->schema->GetInt(
            it->second.data(), static_cast<size_t>(index->column));
        if (actual != key) {
          return Status::Corruption("index " + index->name + " entry " +
                                    std::to_string(key) +
                                    " disagrees with row value " +
                                    std::to_string(actual));
        }
        ++checked;
        return Status::OK();
      });
      BULKDEL_RETURN_IF_ERROR(s);
      if (checked != rows.size()) {
        return Status::Corruption("index " + index->name + " scan count " +
                                  std::to_string(checked) + " != rows " +
                                  std::to_string(rows.size()));
      }
    }
  }
  return Status::OK();
}

Status Database::SimulateCrashAndRecover() {
  PageId catalog_page = catalog_->catalog_page();
  if (storage_backend() == StorageBackend::kFile) {
    // File backend: a crash IS a process death. Discard every in-memory
    // object — buffer pool frames, the decoded WAL, the DiskManager's free
    // list, the catalog cache — and reopen from the files alone, exactly
    // like a restarted process would. The un-fsynced WAL tail (if the
    // "crash" tore a flush) surfaces as a CRC-failing frame that recovery's
    // scan truncates.
    pool_->DiscardAllForCrashTest();
    catalog_->ResetInMemory();
    catalog_.reset();
    pool_.reset();
    log_.reset();
    disk_.reset();
    BULKDEL_RETURN_IF_ERROR(WireStorage(/*truncate=*/false));
    // Note: an injected crash point deliberately survives the restart so
    // tests can interrupt recovery itself (recovery must be idempotent).
    BULKDEL_RETURN_IF_ERROR(catalog_->Load(catalog_page));
    return RecoverDatabase(this);
  }
  // Sim backend: the DiskManager and the WAL's durable image are the
  // durable medium; only the layers above them vanish.
  pool_->DiscardAllForCrashTest();
  log_->DropVolatileTail();
  catalog_->ResetInMemory();
  locks_ = std::make_unique<LockManager>();
  // Restart: reopen the catalog and roll interrupted work forward.
  BULKDEL_RETURN_IF_ERROR(catalog_->Load(catalog_page));
  return RecoverDatabase(this);
}

Result<BulkDeleteReport> Database::BulkUpdateColumn(
    const std::string& table, const std::string& set_column, int64_t delta,
    const std::string& filter_column, int64_t lo, int64_t hi) {
  ExecContext ctx(this);
  std::vector<BufferPoolStats> pool_before = pool_->shard_stats();
  obs::MetricsSnapshot metrics_before = metrics_.Snapshot();
  Result<BulkDeleteReport> result =
      ExecuteBulkUpdate(&ctx, table, set_column, delta, filter_column, lo, hi);
  if (result.ok()) {
    result->backend =
        storage_backend() == StorageBackend::kFile ? "file" : "sim";
    std::vector<BufferPoolStats> pool_after = pool_->shard_stats();
    result->pool_shards.resize(pool_after.size());
    result->pool = BufferPoolStats();
    for (size_t s = 0; s < pool_after.size(); ++s) {
      result->pool_shards[s] = pool_after[s] - pool_before[s];
      result->pool += result->pool_shards[s];
    }
    result->metrics = metrics_.Snapshot() - metrics_before;
  }
  return result;
}

}  // namespace bulkdel

#include "core/exec_context.h"

#include "core/database.h"
#include "obs/statement_registry.h"
#include "obs/trace_recorder.h"

namespace bulkdel {

ExecContext::ExecContext(Database* db)
    : db_(db),
      statement_id_(obs::StatementRegistry::CurrentThreadStatement()),
      root_scope_(&root_attribution_) {
  thread_ordinals_[std::this_thread::get_id()] = next_ordinal_++;
}

void ExecContext::RequestCancel(const Status& cause) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!cancelled_.load(std::memory_order_relaxed)) {
    cancel_cause_ = cause.ok() ? Status::Aborted("execution cancelled")
                               : cause;
    cancelled_.store(true, std::memory_order_release);
  }
}

Status ExecContext::cancel_cause() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_.load(std::memory_order_relaxed) ? cancel_cause_
                                                    : Status::OK();
}

int ExecContext::ThreadOrdinal() {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      thread_ordinals_.emplace(std::this_thread::get_id(), next_ordinal_);
  if (inserted) ++next_ordinal_;
  return it->second;
}

void ExecContext::RecordPhase(PhaseStats phase) {
  std::lock_guard<std::mutex> lock(mu_);
  phase_io_total_ += phase.io;
  phases_.push_back(std::move(phase));
}

std::vector<PhaseStats> ExecContext::TakePhases() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(phases_);
}

IoStats ExecContext::AttributedTotal() const {
  IoStats total = root_attribution_.Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  total += phase_io_total_;
  return total;
}

PhaseScope::PhaseScope(ExecContext* ctx, std::string name, std::string parent)
    : ctx_(ctx),
      name_(std::move(name)),
      parent_(std::move(parent)),
      begin_micros_(ctx->ElapsedMicros()),
      thread_id_(ctx->ThreadOrdinal()),
      io_scope_(&attribution_) {
  if (obs::TraceRecorder::Global().enabled()) begin_nanos_ = MonotonicNanos();
  // Publish the phase to the live statement row (sys.statements). Plain
  // registry memory — never the DiskManager — so simulated I/O stays
  // bit-identical with the observability plane on or off.
  if (ctx_->statement_id() != 0) {
    obs::StatementRegistry::Global().SetPhase(ctx_->statement_id(), name_);
  }
  if (ctx_->db() != nullptr) {
    const auto& hook = ctx_->db()->options().phase_begin_hook;
    if (hook) hook(name_);
  }
}

PhaseScope::~PhaseScope() {
  if (begin_nanos_ != 0) {
    obs::TraceRecorder::Global().RecordComplete(
        obs::TraceCategory::kPhase, name_, begin_nanos_, MonotonicNanos(),
        "items", static_cast<int64_t>(items_), parent_);
  }
  PhaseStats stats;
  stats.name = std::move(name_);
  stats.parent = std::move(parent_);
  stats.items = items_;
  stats.begin_micros = begin_micros_;
  stats.end_micros = ctx_->ElapsedMicros();
  stats.wall_micros = stats.end_micros - begin_micros_;
  stats.thread_id = thread_id_;
  stats.io = attribution_.Snapshot();
  ctx_->RecordPhase(std::move(stats));
}

}  // namespace bulkdel

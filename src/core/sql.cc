#include "core/sql.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>
#include <vector>

#include "exec/delete_list.h"
#include "obs/slow_query_log.h"
#include "obs/statement_registry.h"
#include "util/json.h"

namespace bulkdel {

namespace {

/// Tokenizer: identifiers/keywords, integer literals, punctuation.
struct Token {
  enum Kind { kWord, kNumber, kPunct, kEnd } kind = kEnd;
  std::string text;
  int64_t number = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Token Next() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) return Token{Token::kEnd, "", 0};
    char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      return Token{Token::kWord, input_.substr(start, pos_ - start), 0};
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t start = pos_;
      ++pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      Token t{Token::kNumber, input_.substr(start, pos_ - start), 0};
      t.number = std::strtoll(t.text.c_str(), nullptr, 10);
      return t;
    }
    ++pos_;
    return Token{Token::kPunct, std::string(1, c), 0};
  }

 private:
  const std::string& input_;
  size_t pos_ = 0;
};

bool KeywordIs(const Token& t, const char* kw) {
  if (t.kind != Token::kWord) return false;
  const std::string& s = t.text;
  size_t i = 0;
  for (; kw[i] != '\0'; ++i) {
    if (i >= s.size() ||
        std::toupper(static_cast<unsigned char>(s[i])) != kw[i]) {
      return false;
    }
  }
  return i == s.size();
}

Status ParseError(const std::string& what, const Token& got) {
  return Status::InvalidArgument("parse error: expected " + what + ", got '" +
                                 (got.kind == Token::kEnd ? "<end>" : got.text) +
                                 "'");
}

Status DeleteListTooLarge(size_t max_keys) {
  return Status::ResourceExhausted(
      "delete list exceeds the session bound of " + std::to_string(max_keys) +
      " keys");
}

}  // namespace

Result<BulkDeleteSpec> ParseBulkDelete(Database* db,
                                       const std::string& statement,
                                       size_t max_keys) {
  Lexer lexer(statement);
  Token t = lexer.Next();
  if (!KeywordIs(t, "DELETE")) return ParseError("DELETE", t);
  t = lexer.Next();
  if (!KeywordIs(t, "FROM")) return ParseError("FROM", t);
  t = lexer.Next();
  if (t.kind != Token::kWord) return ParseError("table name", t);

  BulkDeleteSpec spec;
  spec.table = t.text;
  TableDef* table = db->GetTable(spec.table);
  if (table == nullptr) {
    return Status::NotFound("no table " + spec.table);
  }

  t = lexer.Next();
  if (!KeywordIs(t, "WHERE")) return ParseError("WHERE", t);
  t = lexer.Next();
  if (t.kind != Token::kWord) return ParseError("column name", t);
  spec.key_column = t.text;
  if (table->schema->FindColumn(spec.key_column) < 0) {
    return Status::NotFound("no column " + spec.key_column + " in " +
                            spec.table);
  }

  t = lexer.Next();
  if (KeywordIs(t, "IN")) {
    t = lexer.Next();
    if (t.kind != Token::kPunct || t.text != "(") return ParseError("(", t);
    t = lexer.Next();
    if (KeywordIs(t, "SELECT")) {
      // IN (SELECT col2 FROM table2)
      t = lexer.Next();
      if (t.kind != Token::kWord) return ParseError("column name", t);
      std::string sub_column = t.text;
      t = lexer.Next();
      if (!KeywordIs(t, "FROM")) return ParseError("FROM", t);
      t = lexer.Next();
      if (t.kind != Token::kWord) return ParseError("table name", t);
      TableDef* d_table = db->GetTable(t.text);
      if (d_table == nullptr) {
        return Status::NotFound("no table " + t.text);
      }
      int col = d_table->schema->FindColumn(sub_column);
      if (col < 0) {
        return Status::NotFound("no column " + sub_column + " in " + t.text);
      }
      t = lexer.Next();
      if (t.kind != Token::kPunct || t.text != ")") return ParseError(")", t);
      {
        // Extraction scans the referenced table: shared-lock it and hold its
        // heap latch so concurrent sessions' DML cannot move tuples mid-scan.
        LockManager::SharedGuard lock(&db->locks(), d_table->name);
        std::lock_guard<std::mutex> heap(d_table->heap_latch);
        BULKDEL_ASSIGN_OR_RETURN(
            spec.keys, ExtractKeysFromTable(d_table->table.get(), col));
      }
      if (max_keys != 0 && spec.keys.size() > max_keys) {
        return DeleteListTooLarge(max_keys);
      }
    } else {
      // IN (literal, literal, ...)
      while (true) {
        if (t.kind != Token::kNumber) return ParseError("integer literal", t);
        if (max_keys != 0 && spec.keys.size() >= max_keys) {
          return DeleteListTooLarge(max_keys);
        }
        spec.keys.push_back(t.number);
        t = lexer.Next();
        if (t.kind == Token::kPunct && t.text == ",") {
          t = lexer.Next();
          continue;
        }
        if (t.kind == Token::kPunct && t.text == ")") break;
        return ParseError(", or )", t);
      }
    }
  } else if (KeywordIs(t, "BETWEEN")) {
    t = lexer.Next();
    if (t.kind != Token::kNumber) return ParseError("integer literal", t);
    int64_t lo = t.number;
    t = lexer.Next();
    if (!KeywordIs(t, "AND")) return ParseError("AND", t);
    t = lexer.Next();
    if (t.kind != Token::kNumber) return ParseError("integer literal", t);
    int64_t hi = t.number;
    // BETWEEN is a first-class range predicate: carried symbolically and
    // evaluated at execution time inside the statement's exclusive-lock
    // window. No key extraction here — that used to be O(tuples), capped by
    // max_keys (so sliding-window deletes errored), and raced concurrent DML
    // because the shared lock was dropped before execution. Ranges are
    // deliberately exempt from the session key bound: their plans are
    // O(extents freed), not O(keys materialized).
    spec.predicate = DeletePredicate::kRange;
    spec.range_lo = lo;
    spec.range_hi = hi;
    spec.keys_sorted = true;  // a range is trivially in key order
  } else {
    return ParseError("IN or BETWEEN", t);
  }

  t = lexer.Next();
  if (t.kind == Token::kPunct && t.text == ";") t = lexer.Next();
  if (t.kind != Token::kEnd) return ParseError("end of statement", t);
  return spec;
}

Result<BulkDeleteReport> ExecuteSql(Database* db, const std::string& statement,
                                    Strategy strategy) {
  BULKDEL_ASSIGN_OR_RETURN(BulkDeleteSpec spec,
                           ParseBulkDelete(db, statement));
  return db->BulkDelete(spec, strategy);
}

namespace {

Result<std::string> ExecuteCreate(Database* db, Lexer* lexer) {
  Token t = lexer->Next();
  bool unique = false;
  if (KeywordIs(t, "UNIQUE")) {
    unique = true;
    t = lexer->Next();
  }
  if (KeywordIs(t, "TABLE")) {
    if (unique) return ParseError("INDEX after UNIQUE", t);
    t = lexer->Next();
    if (t.kind != Token::kWord) return ParseError("table name", t);
    std::string table = t.text;
    t = lexer->Next();
    if (t.kind != Token::kPunct || t.text != "(") return ParseError("(", t);
    std::vector<Column> columns;
    while (true) {
      t = lexer->Next();
      if (t.kind != Token::kWord) return ParseError("column name", t);
      std::string name = t.text;
      t = lexer->Next();
      if (KeywordIs(t, "INT") || KeywordIs(t, "INTEGER") ||
          KeywordIs(t, "BIGINT")) {
        columns.push_back(Column::Int64(name));
      } else if (KeywordIs(t, "CHAR")) {
        t = lexer->Next();
        if (t.kind != Token::kPunct || t.text != "(") return ParseError("(", t);
        t = lexer->Next();
        if (t.kind != Token::kNumber || t.number <= 0) {
          return ParseError("positive width", t);
        }
        columns.push_back(
            Column::FixedBytes(name, static_cast<uint32_t>(t.number)));
        t = lexer->Next();
        if (t.kind != Token::kPunct || t.text != ")") return ParseError(")", t);
      } else {
        return ParseError("INT or CHAR(n)", t);
      }
      t = lexer->Next();
      if (t.kind == Token::kPunct && t.text == ",") continue;
      if (t.kind == Token::kPunct && t.text == ")") break;
      return ParseError(", or )", t);
    }
    BULKDEL_RETURN_IF_ERROR(
        db->CreateTable(table, Schema{std::move(columns)}).status());
    return std::string("created table " + table);
  }
  if (!KeywordIs(t, "INDEX")) return ParseError("TABLE or INDEX", t);
  t = lexer->Next();
  if (!KeywordIs(t, "ON")) return ParseError("ON", t);
  t = lexer->Next();
  if (t.kind != Token::kWord) return ParseError("table name", t);
  std::string table = t.text;
  t = lexer->Next();
  if (t.kind != Token::kPunct || t.text != "(") return ParseError("(", t);
  t = lexer->Next();
  if (t.kind != Token::kWord) return ParseError("column name", t);
  std::string column = t.text;
  t = lexer->Next();
  if (t.kind != Token::kPunct || t.text != ")") return ParseError(")", t);
  IndexOptions options;
  options.unique = unique;
  bool clustered = false;
  t = lexer->Next();
  while (t.kind == Token::kWord) {
    if (KeywordIs(t, "CLUSTERED")) {
      clustered = true;
    } else if (KeywordIs(t, "PRIORITY")) {
      t = lexer->Next();
      if (t.kind != Token::kNumber) return ParseError("priority value", t);
      options.priority = static_cast<int16_t>(t.number);
    } else {
      return ParseError("CLUSTERED or PRIORITY", t);
    }
    t = lexer->Next();
  }
  BULKDEL_RETURN_IF_ERROR(
      db->CreateIndex(table, column, options, clustered).status());
  return std::string("created index " + table + "." + column);
}

Result<std::string> ExecuteInsert(Database* db, Lexer* lexer) {
  Token t = lexer->Next();
  if (!KeywordIs(t, "INTO")) return ParseError("INTO", t);
  t = lexer->Next();
  if (t.kind != Token::kWord) return ParseError("table name", t);
  std::string table = t.text;
  t = lexer->Next();
  if (!KeywordIs(t, "VALUES")) return ParseError("VALUES", t);
  t = lexer->Next();
  if (t.kind != Token::kPunct || t.text != "(") return ParseError("(", t);
  std::vector<int64_t> values;
  while (true) {
    t = lexer->Next();
    if (t.kind != Token::kNumber) return ParseError("integer literal", t);
    values.push_back(t.number);
    t = lexer->Next();
    if (t.kind == Token::kPunct && t.text == ",") continue;
    if (t.kind == Token::kPunct && t.text == ")") break;
    return ParseError(", or )", t);
  }
  BULKDEL_ASSIGN_OR_RETURN(Rid rid, db->InsertRow(table, values));
  return std::string("inserted 1 row at " + rid.ToString());
}

// -- sys.* virtual tables -----------------------------------------------------
//
// Read-only snapshots of the observability plane, rendered as aligned text
// tables (first line is the header). They read atomics and registry memory
// only — no table locks, no DiskManager — so scraping a live server cannot
// perturb running statements or simulated I/O (docs/OBSERVABILITY.md).

std::string FormatRows(const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += row[c];
      if (c + 1 < row.size() && c < widths.size()) {
        out.append(widths[c] - row[c].size(), ' ');
      }
    }
    out += '\n';
  };
  append_row(header);
  for (const auto& row : rows) append_row(row);
  out.pop_back();  // no trailing newline in statement results
  return out;
}

/// "(lo,hi]" for the log2 bucket a quantile landed in: both edges matter
/// because the quantization is a full power of two.
std::string QuantileCell(const obs::HistogramSnapshot& h, double q) {
  if (h.count == 0) return "-";
  return "(" + std::to_string(h.ApproxQuantileLo(q)) + "," +
         std::to_string(h.ApproxQuantile(q)) + "]";
}

std::string SysMetrics(Database* db) {
  obs::MetricsSnapshot snap = db->metrics().Snapshot();
  std::vector<std::vector<std::string>> rows;
  for (const auto& [name, value] : snap.counters) {
    const obs::MetricInfo* info = obs::FindKnownMetric(name);
    const char* kind =
        info != nullptr && info->kind == obs::MetricKind::kGauge ? "gauge"
                                                                 : "counter";
    rows.push_back({name, kind, info != nullptr ? info->unit : "-",
                    std::to_string(value), "-", "-", "-"});
  }
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    const obs::MetricInfo* info = obs::FindKnownMetric(h.name);
    rows.push_back({h.name, "histogram", info != nullptr ? info->unit : "-",
                    std::to_string(h.count), QuantileCell(h, 0.50),
                    QuantileCell(h, 0.99), QuantileCell(h, 0.999)});
  }
  return FormatRows({"name", "kind", "unit", "value", "p50", "p99", "p999"},
                    rows);
}

std::string SysHistograms(Database* db) {
  obs::MetricsSnapshot snap = db->metrics().Snapshot();
  std::vector<std::vector<std::string>> rows;
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      if (h.buckets[b] == 0) continue;
      int64_t hi = obs::Histogram::BucketUpperBound(static_cast<int>(b));
      int64_t lo =
          b == 0 ? 0
                 : obs::Histogram::BucketUpperBound(static_cast<int>(b) - 1) +
                       1;
      rows.push_back({h.name, std::to_string(b), std::to_string(lo),
                      std::to_string(hi), std::to_string(h.buckets[b]),
                      std::to_string(cumulative)});
    }
  }
  return FormatRows({"name", "bucket", "lo", "hi", "count", "cum"}, rows);
}

std::string SysSessions() {
  std::vector<std::vector<std::string>> rows;
  for (const obs::SessionRow& s : obs::StatementRegistry::Global().Sessions()) {
    rows.push_back({std::to_string(s.id), s.peer,
                    std::to_string(s.elapsed_nanos / 1000),
                    std::to_string(s.statements),
                    s.inflight_statement == 0
                        ? "-"
                        : std::to_string(s.inflight_statement)});
  }
  return FormatRows({"session", "peer", "elapsed_us", "statements", "inflight"},
                    rows);
}

std::string SysStatements() {
  std::vector<std::vector<std::string>> rows;
  for (const obs::StatementRow& s :
       obs::StatementRegistry::Global().Statements()) {
    const char* state = !s.finished ? "run" : (s.ok ? "ok" : "error");
    // Two always-populating counters from the live delta show attribution at
    // a glance; the full delta rides the slow-query log / BulkDeleteReport.
    int64_t d_wal = s.delta.CounterOr(obs::metric_names::kWalSyncs);
    int64_t d_phases =
        s.delta.CounterOr(obs::metric_names::kSchedPhasesDispatched);
    rows.push_back({std::to_string(s.id),
                    s.session_id == 0 ? "-" : std::to_string(s.session_id),
                    state, s.phase.empty() ? "-" : s.phase,
                    std::to_string(s.elapsed_nanos / 1000),
                    std::to_string(s.rows), std::to_string(d_wal),
                    std::to_string(d_phases), s.statement});
  }
  return FormatRows({"id", "session", "state", "phase", "elapsed_us", "rows",
                     "d_wal_syncs", "d_phases", "statement"},
                    rows);
}

Result<std::string> ExecuteSysSelect(Database* db, const std::string& name) {
  if (name == "metrics") return SysMetrics(db);
  if (name == "histograms") return SysHistograms(db);
  if (name == "sessions") return SysSessions();
  if (name == "statements") return SysStatements();
  return Status::NotFound(
      "no sys table " + name +
      " (known: sys.metrics, sys.histograms, sys.sessions, sys.statements)");
}

Result<std::string> ExecuteSelectCount(Database* db, Lexer* lexer) {
  // SELECT COUNT(*) FROM t [WHERE col BETWEEN lo AND hi]; the dispatcher
  // consumed COUNT.
  Token t = lexer->Next();
  if (t.kind != Token::kPunct || t.text != "(") return ParseError("(", t);
  t = lexer->Next();
  if (t.kind != Token::kPunct || t.text != "*") return ParseError("*", t);
  t = lexer->Next();
  if (t.kind != Token::kPunct || t.text != ")") return ParseError(")", t);
  t = lexer->Next();
  if (!KeywordIs(t, "FROM")) return ParseError("FROM", t);
  t = lexer->Next();
  if (t.kind != Token::kWord) return ParseError("table name", t);
  TableDef* table = db->GetTable(t.text);
  if (table == nullptr) return Status::NotFound("no table " + t.text);
  // Reads follow the DML locking discipline (shared table lock, then the
  // heap or index latch) so network sessions can count concurrently with
  // other sessions' inserts and deletes.
  t = lexer->Next();
  if (t.kind == Token::kEnd ||
      (t.kind == Token::kPunct && t.text == ";")) {
    LockManager::SharedGuard lock(&db->locks(), table->name);
    std::lock_guard<std::mutex> heap(table->heap_latch);
    return std::string("count = " +
                       std::to_string(table->table->tuple_count()));
  }
  if (!KeywordIs(t, "WHERE")) return ParseError("WHERE", t);
  t = lexer->Next();
  if (t.kind != Token::kWord) return ParseError("column name", t);
  int col = table->schema->FindColumn(t.text);
  if (col < 0) return Status::NotFound("no column " + t.text);
  std::string column = t.text;
  t = lexer->Next();
  if (!KeywordIs(t, "BETWEEN")) return ParseError("BETWEEN", t);
  t = lexer->Next();
  if (t.kind != Token::kNumber) return ParseError("integer literal", t);
  int64_t lo = t.number;
  t = lexer->Next();
  if (!KeywordIs(t, "AND")) return ParseError("AND", t);
  t = lexer->Next();
  if (t.kind != Token::kNumber) return ParseError("integer literal", t);
  int64_t hi = t.number;
  uint64_t count = 0;
  LockManager::SharedGuard lock(&db->locks(), table->name);
  IndexDef* index = table->FindIndexOnColumn(col);
  if (index != nullptr) {
    std::lock_guard<std::mutex> latch(index->cc->latch);
    BULKDEL_RETURN_IF_ERROR(index->tree->RangeScan(
        lo, hi, [&](int64_t, const Rid&) {
          ++count;
          return Status::OK();
        }));
  } else {
    const Schema& schema = *table->schema;
    std::lock_guard<std::mutex> heap(table->heap_latch);
    BULKDEL_RETURN_IF_ERROR(
        table->table->Scan([&](const Rid&, const char* tuple) {
          int64_t v = schema.GetInt(tuple, static_cast<size_t>(col));
          if (v >= lo && v <= hi) ++count;
          return Status::OK();
        }));
  }
  return std::string("count = " + std::to_string(count) + " (" + column +
                     " between " + std::to_string(lo) + " and " +
                     std::to_string(hi) + ")");
}

Result<std::string> ExecuteSelect(Database* db, Lexer* lexer) {
  Token t = lexer->Next();
  if (t.kind == Token::kPunct && t.text == "*") {
    // SELECT * FROM sys.<name>
    t = lexer->Next();
    if (!KeywordIs(t, "FROM")) return ParseError("FROM", t);
    t = lexer->Next();
    if (t.kind != Token::kWord) return ParseError("table name", t);
    std::string qualifier = t.text;
    t = lexer->Next();
    if (qualifier == "sys" && t.kind == Token::kPunct && t.text == ".") {
      t = lexer->Next();
      if (t.kind != Token::kWord) return ParseError("sys table name", t);
      std::string name = t.text;
      t = lexer->Next();
      if (t.kind == Token::kPunct && t.text == ";") t = lexer->Next();
      if (t.kind != Token::kEnd) return ParseError("end of statement", t);
      return ExecuteSysSelect(db, name);
    }
    return Status::InvalidArgument(
        "SELECT * is supported for sys.* virtual tables only "
        "(data tables support SELECT COUNT(*))");
  }
  if (!KeywordIs(t, "COUNT")) return ParseError("COUNT or *", t);
  return ExecuteSelectCount(db, lexer);
}

Result<std::string> ExecuteDropIndex(Database* db, Lexer* lexer) {
  Token t = lexer->Next();
  if (!KeywordIs(t, "INDEX")) return ParseError("INDEX", t);
  t = lexer->Next();
  if (!KeywordIs(t, "ON")) return ParseError("ON", t);
  t = lexer->Next();
  if (t.kind != Token::kWord) return ParseError("table name", t);
  std::string table = t.text;
  t = lexer->Next();
  if (t.kind != Token::kPunct || t.text != "(") return ParseError("(", t);
  t = lexer->Next();
  if (t.kind != Token::kWord) return ParseError("column name", t);
  std::string column = t.text;
  t = lexer->Next();
  if (t.kind != Token::kPunct || t.text != ")") return ParseError(")", t);
  BULKDEL_RETURN_IF_ERROR(db->DropIndex(table, column));
  return std::string("dropped index " + table + "." + column);
}

Result<std::string> ExecuteSet(SqlSession* session, Lexer* lexer) {
  Token t = lexer->Next();
  if (!KeywordIs(t, "STRATEGY")) return ParseError("STRATEGY", t);
  t = lexer->Next();
  // Strategy names contain '-', which lexes as word/punct runs; re-join them.
  std::string name;
  while (t.kind == Token::kWord ||
         (t.kind == Token::kPunct && t.text == "-")) {
    name += t.text;
    t = lexer->Next();
  }
  if (t.kind == Token::kPunct && t.text == ";") t = lexer->Next();
  if (t.kind != Token::kEnd) return ParseError("end of statement", t);
  Strategy strategy;
  if (!StrategyFromName(name, &strategy)) {
    return Status::InvalidArgument("unknown strategy '" + name + "'");
  }
  session->strategy = strategy;
  return std::string("strategy = " + name);
}

/// Builds and appends the slow-query JSONL record once the statement scope
/// measured an over-threshold latency. For DELETEs the record embeds the
/// full BulkDeleteReport JSON — the phase spans bulkdel_tracecat --slowlog
/// walks for the critical path plus the statement's metrics delta
/// (docs/OBSERVABILITY.md documents the layout).
void MaybeCaptureSlowQuery(SqlSession* session,
                           const obs::StatementScope& scope,
                           const std::string& statement,
                           const Result<std::string>& result,
                           const std::optional<BulkDeleteReport>& report) {
  obs::SlowQueryLog* log = session->slow_log;
  if (log == nullptr) return;
  int64_t elapsed_ns = scope.ElapsedNanos();
  if (!log->Exceeds(elapsed_ns)) return;
  std::string rec = "{\"statement_id\":" + std::to_string(scope.id()) +
                    ",\"session\":" + std::to_string(session->session_id) +
                    ",\"elapsed_ns\":" + std::to_string(elapsed_ns) +
                    ",\"threshold_ns\":" + std::to_string(log->threshold_ns()) +
                    ",\"ok\":" + (result.ok() ? "true" : "false") +
                    ",\"statement\":";
  json::AppendEscaped(&rec, statement.substr(0, 4096));
  if (result.ok()) {
    rec += ",\"result\":";
    json::AppendEscaped(&rec, *result);
  } else {
    rec += ",\"error\":";
    json::AppendEscaped(&rec, result.status().ToString());
  }
  if (report.has_value()) {
    rec += ",\"report\":";
    rec += report->ToJson();
  }
  rec += '}';
  log->Append(rec).ok();  // best-effort: capture must never fail a statement
}

}  // namespace

Result<std::string> ExecuteStatement(Database* db, SqlSession* session,
                                     const std::string& statement) {
  // Every statement attributes to a row in the global StatementRegistry for
  // its duration (sys.statements / sys.sessions); the scope also carries the
  // thread-local id ExecContext captures so worker-thread phases publish to
  // the right row.
  obs::StatementScope scope(session->session_id, statement,
                            db != nullptr ? &db->metrics() : nullptr);
  // DELETE keeps its report alive past the dispatcher when slow-query
  // capture might need the phase spans.
  std::optional<BulkDeleteReport> delete_report;
  Lexer lexer(statement);
  Token t = lexer.Next();
  Result<std::string> result = [&]() -> Result<std::string> {
    if (KeywordIs(t, "CREATE")) return ExecuteCreate(db, &lexer);
    if (KeywordIs(t, "DROP")) return ExecuteDropIndex(db, &lexer);
    if (KeywordIs(t, "INSERT")) return ExecuteInsert(db, &lexer);
    if (KeywordIs(t, "SELECT")) return ExecuteSelect(db, &lexer);
    if (KeywordIs(t, "SET")) return ExecuteSet(session, &lexer);
    if (KeywordIs(t, "SHOW")) {
      Token what = lexer.Next();
      if (KeywordIs(what, "STRATEGY")) {
        return std::string("strategy = ") + StrategyName(session->strategy);
      }
      if (KeywordIs(what, "METRICS")) return SysMetrics(db);
      if (KeywordIs(what, "SESSIONS")) return SysSessions();
      return ParseError("STRATEGY, METRICS or SESSIONS", what);
    }
    if (KeywordIs(t, "EXPLAIN")) {
      std::string rest = statement;
      size_t pos = rest.find_first_not_of(" \t");
      pos = rest.find(' ', pos);  // skip the EXPLAIN token
      if (pos == std::string::npos) {
        return Status::InvalidArgument("EXPLAIN what?");
      }
      BULKDEL_ASSIGN_OR_RETURN(
          BulkDeleteSpec spec,
          ParseBulkDelete(db, rest.substr(pos + 1), session->max_delete_keys));
      BULKDEL_ASSIGN_OR_RETURN(BulkDeletePlan plan,
                               db->ExplainBulkDelete(spec, session->strategy));
      return plan.Explain();
    }
    if (KeywordIs(t, "DELETE")) {
      BULKDEL_ASSIGN_OR_RETURN(
          BulkDeleteSpec spec,
          ParseBulkDelete(db, statement, session->max_delete_keys));
      BULKDEL_ASSIGN_OR_RETURN(BulkDeleteReport report,
                               db->BulkDelete(spec, session->strategy));
      scope.set_rows(report.rows_deleted);
      std::string line =
          "deleted " + std::to_string(report.rows_deleted) + " row(s) [" +
          StrategyName(report.strategy_used) + ", " +
          std::to_string(report.simulated_seconds()) + " simulated s]";
      if (report.cascaded_rows > 0) {
        // Per-leg attribution so "forget user X" answers show where the
        // collateral rows went without a slow-log round trip.
        line += ", cascaded " + std::to_string(report.cascaded_rows) +
                " row(s) (";
        for (size_t i = 0; i < report.cascade_tables.size(); ++i) {
          if (i > 0) line += ", ";
          line += report.cascade_tables[i].table + ": " +
                  std::to_string(report.cascade_tables[i].rows);
        }
        line += ")";
      }
      if (session->slow_log != nullptr) delete_report = std::move(report);
      return line;
    }
    return ParseError(
        "CREATE, DROP, INSERT, SELECT, SET, SHOW, EXPLAIN or DELETE", t);
  }();
  scope.set_ok(result.ok());
  if (result.ok()) ++session->statements;
  MaybeCaptureSlowQuery(session, scope, statement, result, delete_report);
  return result;
}

Result<std::string> ExecuteStatement(Database* db,
                                     const std::string& statement,
                                     Strategy strategy) {
  SqlSession session;
  session.strategy = strategy;
  session.max_delete_keys = 0;  // unbounded, as before sessions existed
  return ExecuteStatement(db, &session, statement);
}

}  // namespace bulkdel

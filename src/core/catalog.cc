#include "core/catalog.h"

#include <cstring>

#include "table/heap_page.h"
#include "util/coding.h"

namespace bulkdel {

namespace {
constexpr uint32_t kCatalogMagic = 0x43415431;  // "CAT1"

/// Bounds-checked sequential writer/reader over the catalog page.
class PageWriter {
 public:
  explicit PageWriter(char* data) : data_(data) {}

  Status U8(uint8_t v) { return Raw(&v, 1); }
  Status U16(uint16_t v) {
    char b[2];
    StoreU16(b, v);
    return Raw(b, 2);
  }
  Status U32(uint32_t v) {
    char b[4];
    StoreU32(b, v);
    return Raw(b, 4);
  }
  Status Str(const std::string& s) {
    if (s.size() > 255) return Status::InvalidArgument("name too long");
    BULKDEL_RETURN_IF_ERROR(U8(static_cast<uint8_t>(s.size())));
    return Raw(s.data(), s.size());
  }

 private:
  Status Raw(const void* src, size_t n) {
    if (pos_ + n > kPageSize) {
      return Status::ResourceExhausted("catalog page overflow");
    }
    std::memcpy(data_ + pos_, src, n);
    pos_ += n;
    return Status::OK();
  }

  char* data_;
  size_t pos_ = 0;
};

class PageReader {
 public:
  explicit PageReader(const char* data) : data_(data) {}

  Result<uint8_t> U8() {
    BULKDEL_RETURN_IF_ERROR(Check(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint16_t> U16() {
    BULKDEL_RETURN_IF_ERROR(Check(2));
    uint16_t v = LoadU16(data_ + pos_);
    pos_ += 2;
    return v;
  }
  Result<uint32_t> U32() {
    BULKDEL_RETURN_IF_ERROR(Check(4));
    uint32_t v = LoadU32(data_ + pos_);
    pos_ += 4;
    return v;
  }
  Result<std::string> Str() {
    BULKDEL_ASSIGN_OR_RETURN(uint8_t n, U8());
    BULKDEL_RETURN_IF_ERROR(Check(n));
    std::string s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

 private:
  Status Check(size_t n) const {
    if (pos_ + n > kPageSize) {
      return Status::Corruption("catalog page truncated");
    }
    return Status::OK();
  }

  const char* data_;
  size_t pos_ = 0;
};
}  // namespace

Status Catalog::Format() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
  catalog_page_ = page.page_id();
  page.MarkDirty();
  page.Release();
  return Persist();
}

Status Catalog::Persist() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(catalog_page_));
  std::memset(page.data(), 0, kPageSize);
  PageWriter w(page.data());
  BULKDEL_RETURN_IF_ERROR(w.U32(kCatalogMagic));
  BULKDEL_RETURN_IF_ERROR(w.U16(static_cast<uint16_t>(tables_.size())));
  for (const auto& t : tables_) {
    BULKDEL_RETURN_IF_ERROR(w.Str(t->name));
    BULKDEL_RETURN_IF_ERROR(w.U32(t->table->header_page()));
    BULKDEL_RETURN_IF_ERROR(
        w.U16(static_cast<uint16_t>(t->schema->num_columns())));
    for (const Column& c : t->schema->columns()) {
      BULKDEL_RETURN_IF_ERROR(w.Str(c.name));
      BULKDEL_RETURN_IF_ERROR(w.U8(static_cast<uint8_t>(c.type)));
      BULKDEL_RETURN_IF_ERROR(w.U32(c.size));
    }
    BULKDEL_RETURN_IF_ERROR(w.U16(static_cast<uint16_t>(t->indices.size())));
    for (const auto& index : t->indices) {
      BULKDEL_RETURN_IF_ERROR(w.Str(index->name));
      BULKDEL_RETURN_IF_ERROR(w.U32(index->tree->meta_page()));
      BULKDEL_RETURN_IF_ERROR(w.U16(static_cast<uint16_t>(index->column)));
      uint8_t flags = (index->options.unique ? 1 : 0) |
                      (index->clustered ? 2 : 0);
      BULKDEL_RETURN_IF_ERROR(w.U8(flags));
      BULKDEL_RETURN_IF_ERROR(w.U16(index->options.max_leaf_entries));
      BULKDEL_RETURN_IF_ERROR(w.U16(index->options.max_inner_entries));
      BULKDEL_RETURN_IF_ERROR(
          w.U16(static_cast<uint16_t>(index->options.priority)));
    }
  }
  BULKDEL_RETURN_IF_ERROR(
      w.U16(static_cast<uint16_t>(foreign_keys_.size())));
  for (const ForeignKeyDef& fk : foreign_keys_) {
    BULKDEL_RETURN_IF_ERROR(w.Str(fk.child_table));
    BULKDEL_RETURN_IF_ERROR(w.U16(static_cast<uint16_t>(fk.child_column)));
    BULKDEL_RETURN_IF_ERROR(w.Str(fk.parent_table));
    BULKDEL_RETURN_IF_ERROR(w.U16(static_cast<uint16_t>(fk.parent_column)));
    BULKDEL_RETURN_IF_ERROR(w.U8(static_cast<uint8_t>(fk.action)));
  }
  page.MarkDirty();
  return Status::OK();
}

Status Catalog::Load(PageId catalog_page) {
  catalog_page_ = catalog_page;
  tables_.clear();
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(catalog_page_));
  PageReader r(page.data());
  BULKDEL_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kCatalogMagic) {
    return Status::Corruption("bad catalog magic");
  }
  BULKDEL_ASSIGN_OR_RETURN(uint16_t n_tables, r.U16());
  for (uint16_t ti = 0; ti < n_tables; ++ti) {
    auto t = std::make_unique<TableDef>();
    BULKDEL_ASSIGN_OR_RETURN(t->name, r.Str());
    BULKDEL_ASSIGN_OR_RETURN(uint32_t header_page, r.U32());
    BULKDEL_ASSIGN_OR_RETURN(uint16_t n_cols, r.U16());
    std::vector<Column> cols;
    for (uint16_t ci = 0; ci < n_cols; ++ci) {
      Column c;
      BULKDEL_ASSIGN_OR_RETURN(c.name, r.Str());
      BULKDEL_ASSIGN_OR_RETURN(uint8_t type, r.U8());
      c.type = static_cast<ColumnType>(type);
      BULKDEL_ASSIGN_OR_RETURN(c.size, r.U32());
      cols.push_back(std::move(c));
    }
    t->schema = std::make_unique<Schema>(std::move(cols));
    BULKDEL_ASSIGN_OR_RETURN(
        HeapTable table, HeapTable::Open(pool_, *t->schema, header_page));
    t->table = std::make_unique<HeapTable>(std::move(table));
    BULKDEL_ASSIGN_OR_RETURN(uint16_t n_indices, r.U16());
    for (uint16_t ii = 0; ii < n_indices; ++ii) {
      auto index = std::make_unique<IndexDef>();
      BULKDEL_ASSIGN_OR_RETURN(index->name, r.Str());
      BULKDEL_ASSIGN_OR_RETURN(uint32_t meta_page, r.U32());
      BULKDEL_ASSIGN_OR_RETURN(uint16_t column, r.U16());
      index->column = column;
      BULKDEL_ASSIGN_OR_RETURN(uint8_t flags, r.U8());
      index->options.unique = (flags & 1) != 0;
      index->clustered = (flags & 2) != 0;
      BULKDEL_ASSIGN_OR_RETURN(index->options.max_leaf_entries, r.U16());
      BULKDEL_ASSIGN_OR_RETURN(index->options.max_inner_entries, r.U16());
      BULKDEL_ASSIGN_OR_RETURN(uint16_t priority, r.U16());
      index->options.priority = static_cast<int16_t>(priority);
      BULKDEL_ASSIGN_OR_RETURN(
          BTree tree, BTree::Open(pool_, meta_page, index->options));
      index->tree = std::make_unique<BTree>(std::move(tree));
      t->indices.push_back(std::move(index));
    }
    tables_.push_back(std::move(t));
  }
  foreign_keys_.clear();
  BULKDEL_ASSIGN_OR_RETURN(uint16_t n_fks, r.U16());
  for (uint16_t i = 0; i < n_fks; ++i) {
    ForeignKeyDef fk;
    BULKDEL_ASSIGN_OR_RETURN(fk.child_table, r.Str());
    BULKDEL_ASSIGN_OR_RETURN(uint16_t child_col, r.U16());
    fk.child_column = child_col;
    BULKDEL_ASSIGN_OR_RETURN(fk.parent_table, r.Str());
    BULKDEL_ASSIGN_OR_RETURN(uint16_t parent_col, r.U16());
    fk.parent_column = parent_col;
    BULKDEL_ASSIGN_OR_RETURN(uint8_t action, r.U8());
    fk.action = static_cast<FkAction>(action);
    foreign_keys_.push_back(std::move(fk));
  }
  return Status::OK();
}

Status Catalog::AddForeignKey(const std::string& child_table,
                              const std::string& child_column,
                              const std::string& parent_table,
                              const std::string& parent_column,
                              FkAction action) {
  TableDef* child = GetTable(child_table);
  TableDef* parent = GetTable(parent_table);
  if (child == nullptr || parent == nullptr) {
    return Status::NotFound("foreign key references unknown table");
  }
  ForeignKeyDef fk;
  fk.child_table = child_table;
  fk.child_column = child->schema->FindColumn(child_column);
  fk.parent_table = parent_table;
  fk.parent_column = parent->schema->FindColumn(parent_column);
  fk.action = action;
  if (fk.child_column < 0 || fk.parent_column < 0) {
    return Status::NotFound("foreign key references unknown column");
  }
  IndexDef* parent_index = parent->FindIndexOnColumn(fk.parent_column);
  if (parent_index == nullptr || !parent_index->options.unique) {
    return Status::FailedPrecondition(
        "foreign key parent column must carry a unique index");
  }
  foreign_keys_.push_back(std::move(fk));
  return Persist();
}

std::vector<const ForeignKeyDef*> Catalog::ForeignKeysReferencing(
    const std::string& parent_table, int parent_column) const {
  std::vector<const ForeignKeyDef*> out;
  for (const ForeignKeyDef& fk : foreign_keys_) {
    if (fk.parent_table == parent_table && fk.parent_column == parent_column) {
      out.push_back(&fk);
    }
  }
  return out;
}

std::vector<const ForeignKeyDef*> Catalog::ForeignKeysOf(
    const std::string& child_table) const {
  std::vector<const ForeignKeyDef*> out;
  for (const ForeignKeyDef& fk : foreign_keys_) {
    if (fk.child_table == child_table) out.push_back(&fk);
  }
  return out;
}

Result<TableDef*> Catalog::CreateTable(const std::string& name,
                                       const Schema& schema) {
  if (GetTable(name) != nullptr) {
    return Status::AlreadyExists("table " + name + " exists");
  }
  if (schema.tuple_size() == 0 ||
      HeapPage::CapacityFor(schema.tuple_size()) == 0) {
    return Status::InvalidArgument("tuple size " +
                                   std::to_string(schema.tuple_size()) +
                                   " does not fit a page");
  }
  auto t = std::make_unique<TableDef>();
  t->name = name;
  t->schema = std::make_unique<Schema>(schema);
  BULKDEL_ASSIGN_OR_RETURN(HeapTable table,
                           HeapTable::Create(pool_, *t->schema));
  t->table = std::make_unique<HeapTable>(std::move(table));
  TableDef* raw = t.get();
  tables_.push_back(std::move(t));
  BULKDEL_RETURN_IF_ERROR(Persist());
  return raw;
}

Result<IndexDef*> Catalog::CreateIndex(const std::string& table_name,
                                       const std::string& column_name,
                                       IndexOptions options, bool clustered) {
  TableDef* t = GetTable(table_name);
  if (t == nullptr) return Status::NotFound("no table " + table_name);
  int column = t->schema->FindColumn(column_name);
  if (column < 0) {
    return Status::NotFound("no column " + column_name + " in " + table_name);
  }
  if (t->schema->column(static_cast<size_t>(column)).type !=
      ColumnType::kInt64) {
    return Status::NotSupported("only int64 columns are indexable");
  }
  if (t->FindIndexOnColumn(column) != nullptr) {
    return Status::AlreadyExists("index on " + table_name + "." +
                                 column_name + " exists");
  }
  auto index = std::make_unique<IndexDef>();
  index->name = table_name + "." + column_name;
  index->column = column;
  index->options = options;
  index->clustered = clustered;
  BULKDEL_ASSIGN_OR_RETURN(BTree tree, BTree::Create(pool_, options));
  index->tree = std::make_unique<BTree>(std::move(tree));
  IndexDef* raw = index.get();
  t->indices.push_back(std::move(index));
  BULKDEL_RETURN_IF_ERROR(Persist());
  return raw;
}

TableDef* Catalog::GetTable(const std::string& name) {
  for (auto& t : tables_) {
    if (t->name == name) return t.get();
  }
  return nullptr;
}

IndexDef* Catalog::GetIndex(const std::string& table_name,
                            const std::string& column_name) {
  TableDef* t = GetTable(table_name);
  if (t == nullptr) return nullptr;
  int column = t->schema->FindColumn(column_name);
  if (column < 0) return nullptr;
  return t->FindIndexOnColumn(column);
}

Status Catalog::RemoveIndex(const std::string& table_name,
                            const std::string& column_name) {
  TableDef* t = GetTable(table_name);
  if (t == nullptr) return Status::NotFound("no table " + table_name);
  for (auto it = t->indices.begin(); it != t->indices.end(); ++it) {
    if ((*it)->name == table_name + "." + column_name) {
      t->indices.erase(it);
      return Persist();
    }
  }
  return Status::NotFound("no index on " + table_name + "." + column_name);
}

std::vector<TableDef*> Catalog::tables() {
  std::vector<TableDef*> out;
  out.reserve(tables_.size());
  for (auto& t : tables_) out.push_back(t.get());
  return out;
}

}  // namespace bulkdel

#ifndef BULKDEL_CORE_CATALOG_H_
#define BULKDEL_CORE_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "storage/buffer_pool.h"
#include "table/heap_table.h"
#include "table/schema.h"
#include "txn/side_file.h"
#include "util/result.h"

namespace bulkdel {

/// One index of a table, with its concurrency state.
struct IndexDef {
  std::string name;  ///< "<table>.<column>"
  int column = -1;
  IndexOptions options;
  /// The table is physically ordered by this index's key column.
  bool clustered = false;
  std::unique_ptr<BTree> tree;
  std::unique_ptr<IndexConcurrencyState> cc =
      std::make_unique<IndexConcurrencyState>();
};

/// One table plus its indices.
struct TableDef {
  std::string name;
  std::unique_ptr<Schema> schema;
  std::unique_ptr<HeapTable> table;
  std::vector<std::unique_ptr<IndexDef>> indices;
  /// Serializes heap mutations from concurrent updaters.
  std::mutex heap_latch;

  IndexDef* FindIndexOnColumn(int column) {
    for (auto& index : indices) {
      if (index->column == column) return index.get();
    }
    return nullptr;
  }
};

/// Referential action when a referenced parent row is deleted.
enum class FkAction : uint8_t {
  kRestrict,  ///< refuse the delete while references exist
  kCascade,   ///< bulk delete the referencing child rows too
};

/// FOREIGN KEY (child.column) REFERENCES parent(column).
///
/// The paper treats referential integrity as part of vertical processing:
/// constraints are checked set-at-a-time "as early as possible and before
/// deleting records from the table and the indices so that no work needs to
/// be undone if an integrity constraint fails" (§2.1/§2.2).
struct ForeignKeyDef {
  std::string child_table;
  int child_column = -1;
  std::string parent_table;
  int parent_column = -1;
  FkAction action = FkAction::kRestrict;

  std::string Name() const {
    return child_table + "." + std::to_string(child_column) + "->" +
           parent_table + "." + std::to_string(parent_column);
  }
};

/// Persistent catalog of tables, indices and foreign keys, serialized into a
/// single page so the database can be reopened (or crash-recovered) from
/// disk.
class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  /// Allocates and formats the catalog page (for a fresh database; this must
  /// be the very first page allocation so the page id is well known).
  Status Format();

  /// Loads all definitions from `catalog_page` and reopens the structures.
  Status Load(PageId catalog_page);

  /// Serializes all definitions to the catalog page.
  Status Persist();

  PageId catalog_page() const { return catalog_page_; }

  Result<TableDef*> CreateTable(const std::string& name, const Schema& schema);
  Result<IndexDef*> CreateIndex(const std::string& table_name,
                                const std::string& column_name,
                                IndexOptions options, bool clustered);
  TableDef* GetTable(const std::string& name);
  IndexDef* GetIndex(const std::string& table_name,
                     const std::string& column_name);
  /// Detaches an index definition (the caller has already dropped the tree).
  Status RemoveIndex(const std::string& table_name,
                     const std::string& column_name);

  std::vector<TableDef*> tables();

  /// Registers FOREIGN KEY child(column) REFERENCES parent(column).
  /// The parent column must carry a unique index (the usual PK case) so
  /// existence checks have an access path.
  Status AddForeignKey(const std::string& child_table,
                       const std::string& child_column,
                       const std::string& parent_table,
                       const std::string& parent_column, FkAction action);

  const std::vector<ForeignKeyDef>& foreign_keys() const {
    return foreign_keys_;
  }
  /// FKs whose parent side is (table, column).
  std::vector<const ForeignKeyDef*> ForeignKeysReferencing(
      const std::string& parent_table, int parent_column) const;
  /// FKs whose child side is `child_table`.
  std::vector<const ForeignKeyDef*> ForeignKeysOf(
      const std::string& child_table) const;

  /// Drops all in-memory definitions (crash simulation) without touching
  /// disk; call Load() afterwards to reopen.
  void ResetInMemory() { tables_.clear(); }

 private:
  BufferPool* pool_;
  PageId catalog_page_ = kInvalidPageId;
  std::vector<std::unique_ptr<TableDef>> tables_;
  std::vector<ForeignKeyDef> foreign_keys_;
};

}  // namespace bulkdel

#endif  // BULKDEL_CORE_CATALOG_H_

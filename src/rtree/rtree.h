#ifndef BULKDEL_RTREE_RTREE_H_
#define BULKDEL_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "storage/buffer_pool.h"
#include "table/rid.h"
#include "util/result.h"

namespace bulkdel {

/// Axis-aligned rectangle with integer coordinates (a point is a degenerate
/// rectangle).
struct Rect {
  int64_t x1 = 0, y1 = 0, x2 = 0, y2 = 0;

  static Rect Point(int64_t x, int64_t y) { return Rect{x, y, x, y}; }

  bool Intersects(const Rect& o) const {
    return x1 <= o.x2 && o.x1 <= x2 && y1 <= o.y2 && o.y1 <= y2;
  }
  bool Contains(const Rect& o) const {
    return x1 <= o.x1 && o.x2 <= x2 && y1 <= o.y1 && o.y2 <= y2;
  }
  /// Area as double (coordinates can be large).
  double Area() const {
    return static_cast<double>(x2 - x1) * static_cast<double>(y2 - y1);
  }
  Rect Union(const Rect& o) const {
    return Rect{x1 < o.x1 ? x1 : o.x1, y1 < o.y1 ? y1 : o.y1,
                x2 > o.x2 ? x2 : o.x2, y2 > o.y2 ? y2 : o.y2};
  }
  double EnlargementTo(const Rect& o) const {
    return Union(o).Area() - Area();
  }
  friend bool operator==(const Rect& a, const Rect& b) {
    return a.x1 == b.x1 && a.y1 == b.y1 && a.x2 == b.x2 && a.y2 == b.y2;
  }
};

struct RtreeBulkDeleteStats {
  uint64_t entries_deleted = 0;
  uint64_t leaves_visited = 0;
  uint64_t inner_visited = 0;
  uint64_t nodes_freed = 0;
};

/// Guttman R-tree (quadratic split) mapping rectangles to RIDs — the third
/// index family of the paper's future work (§5: "hash tables, R-trees, or
/// grid files").
///
/// The vertical bulk-delete insight transfers even though an R-tree has no
/// sort order to adapt the delete list to: the ⋉̸-by-RID predicate needs no
/// order at all. BulkDeleteByRids performs one depth-first pass over the
/// whole tree, probing every leaf entry against a main-memory RID hash set,
/// dropping emptied subtrees (free-at-empty) and tightening bounding boxes
/// on the way back up — each node is read and written at most once,
/// regardless of the delete-list size. The traditional path locates every
/// entry with a spatial search from the root.
class RTree {
 public:
  static Result<RTree> Create(BufferPool* pool);
  static Result<RTree> Open(BufferPool* pool, PageId meta_page);

  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  PageId meta_page() const { return meta_page_; }
  uint64_t entry_count() const { return entry_count_; }
  int height() const { return height_; }
  uint32_t num_nodes() const { return num_nodes_; }

  Status Insert(const Rect& rect, const Rid& rid);

  /// Traditional delete: spatial search for the exact (rect, rid) entry,
  /// remove it, free-at-empty upward, tighten MBRs.
  Status Delete(const Rect& rect, const Rid& rid);

  /// All (rect, rid) entries intersecting `query`.
  Status SearchIntersect(
      const Rect& query,
      const std::function<Status(const Rect&, const Rid&)>& visitor);

  /// Bulk delete by RID predicate: one DFS pass over the tree.
  Status BulkDeleteByRids(const std::vector<Rid>& rids,
                          RtreeBulkDeleteStats* stats = nullptr);

  /// Visits every leaf entry.
  Status ScanAll(
      const std::function<Status(const Rect&, const Rid&)>& visitor);

  Status FlushMeta();

  /// Validates: uniform leaf depth, every child MBR contained in the
  /// parent's stored MBR, counts correct.
  Status CheckInvariants();

 private:
  explicit RTree(BufferPool* pool, PageId meta_page)
      : pool_(pool), meta_page_(meta_page) {}

  struct Split {
    Rect mbr;       // tightened MBR of the original node
    PageId right;   // new sibling
    Rect right_mbr;
  };

  Status LoadMeta();
  Result<PageId> NewNode(uint8_t level);

  Result<std::optional<Split>> InsertRec(PageId page, const Rect& rect,
                                         const Rid& rid, Rect* node_mbr);
  /// Quadratic split of a full node; the new entry has already been placed.
  Status SplitNode(PageId page, Split* split);

  Status DeleteRec(PageId page, const Rect& rect, const Rid& rid, bool* found,
                   bool* now_empty, Rect* new_mbr);

  Status BulkDeleteRec(PageId page,
                       const std::function<bool(const Rid&)>& pred,
                       RtreeBulkDeleteStats* stats, bool* now_empty,
                       Rect* new_mbr);

  BufferPool* pool_;
  PageId meta_page_;
  PageId root_ = kInvalidPageId;
  int height_ = 1;
  uint64_t entry_count_ = 0;
  uint32_t num_nodes_ = 0;
};

}  // namespace bulkdel

#endif  // BULKDEL_RTREE_RTREE_H_

#include "rtree/rtree.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "exec/hash_delete.h"
#include "util/coding.h"

namespace bulkdel {

namespace {
constexpr uint32_t kRtreeMagic = 0x52545231;  // "RTR1"

/// Node page view. Layout:
///   header 16: [u8 level][u8 pad][u16 count][12 reserved]
///   entries at 16, stride 40: [i64 x1][i64 y1][i64 x2][i64 y2]
///                             [u32 ref][u16 slot][2 pad]
/// Leaf entries store a RID in (ref, slot); inner entries store a child page
/// in ref.
class RNode {
 public:
  static constexpr uint32_t kHeaderSize = 16;
  static constexpr uint32_t kEntrySize = 40;
  static constexpr uint16_t Capacity() {
    return (kPageSize - kHeaderSize) / kEntrySize;
  }

  explicit RNode(char* data) : data_(data) {}

  void Init(uint8_t level) {
    std::memset(data_, 0, kPageSize);
    data_[0] = static_cast<char>(level);
  }

  uint8_t level() const { return static_cast<uint8_t>(data_[0]); }
  bool is_leaf() const { return level() == 0; }
  uint16_t count() const { return LoadU16(data_ + 2); }
  void set_count(uint16_t c) { StoreU16(data_ + 2, c); }

  Rect RectAt(uint16_t i) const {
    const char* e = Entry(i);
    return Rect{LoadI64(e), LoadI64(e + 8), LoadI64(e + 16), LoadI64(e + 24)};
  }
  Rid RidAt(uint16_t i) const {
    return Rid(LoadU32(Entry(i) + 32), LoadU16(Entry(i) + 36));
  }
  PageId ChildAt(uint16_t i) const { return LoadU32(Entry(i) + 32); }

  void Set(uint16_t i, const Rect& r, uint32_t ref, uint16_t slot) {
    char* e = Entry(i);
    StoreI64(e, r.x1);
    StoreI64(e + 8, r.y1);
    StoreI64(e + 16, r.x2);
    StoreI64(e + 24, r.y2);
    StoreU32(e + 32, ref);
    StoreU16(e + 36, slot);
    StoreU16(e + 38, 0);
  }
  void SetRect(uint16_t i, const Rect& r) {
    char* e = Entry(i);
    StoreI64(e, r.x1);
    StoreI64(e + 8, r.y1);
    StoreI64(e + 16, r.x2);
    StoreI64(e + 24, r.y2);
  }
  bool Append(const Rect& r, uint32_t ref, uint16_t slot) {
    if (count() >= Capacity()) return false;
    Set(count(), r, ref, slot);
    set_count(count() + 1);
    return true;
  }
  void RemoveAt(uint16_t i) {
    uint16_t n = count();
    if (i + 1 < n) {
      std::memcpy(Entry(i), Entry(n - 1), kEntrySize);
    }
    set_count(n - 1);
  }

  Rect ComputeMbr() const {
    Rect mbr = RectAt(0);
    for (uint16_t i = 1; i < count(); ++i) mbr = mbr.Union(RectAt(i));
    return mbr;
  }

 private:
  char* Entry(uint16_t i) const {
    return data_ + kHeaderSize + static_cast<uint32_t>(i) * kEntrySize;
  }
  char* data_;
};

struct TempEntry {
  Rect rect;
  uint32_t ref;
  uint16_t slot;
};

/// Guttman's quadratic split of cap+1 entries into two groups.
void QuadraticSplit(std::vector<TempEntry>& entries,
                    std::vector<TempEntry>* left,
                    std::vector<TempEntry>* right) {
  const size_t n = entries.size();
  const size_t min_fill = std::max<size_t>(n / 4, 1);
  // Seeds: the pair wasting the most area.
  size_t seed_a = 0, seed_b = 1;
  double worst = -1;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double waste = entries[i].rect.Union(entries[j].rect).Area() -
                     entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  std::vector<bool> assigned(n, false);
  left->push_back(entries[seed_a]);
  right->push_back(entries[seed_b]);
  assigned[seed_a] = assigned[seed_b] = true;
  Rect lmbr = entries[seed_a].rect;
  Rect rmbr = entries[seed_b].rect;
  size_t remaining = n - 2;
  while (remaining > 0) {
    // Forced assignment to satisfy minimum fill.
    if (left->size() + remaining == min_fill ||
        right->size() + remaining == min_fill) {
      std::vector<TempEntry>* target =
          left->size() + remaining == min_fill ? left : right;
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          target->push_back(entries[i]);
          assigned[i] = true;
        }
      }
      break;
    }
    // Pick the entry with the strongest preference.
    size_t best = n;
    double best_diff = -1;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      double d1 = lmbr.EnlargementTo(entries[i].rect);
      double d2 = rmbr.EnlargementTo(entries[i].rect);
      double diff = d1 > d2 ? d1 - d2 : d2 - d1;
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    double d1 = lmbr.EnlargementTo(entries[best].rect);
    double d2 = rmbr.EnlargementTo(entries[best].rect);
    bool go_left = d1 < d2 || (d1 == d2 && left->size() < right->size());
    if (go_left) {
      left->push_back(entries[best]);
      lmbr = lmbr.Union(entries[best].rect);
    } else {
      right->push_back(entries[best]);
      rmbr = rmbr.Union(entries[best].rect);
    }
    assigned[best] = true;
    --remaining;
  }
}
}  // namespace

Result<RTree> RTree::Create(BufferPool* pool) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool->NewPage());
  RTree tree(pool, meta.page_id());
  BULKDEL_ASSIGN_OR_RETURN(PageId root, tree.NewNode(0));
  tree.root_ = root;
  tree.height_ = 1;
  StoreU32(meta.data(), kRtreeMagic);
  meta.MarkDirty();
  meta.Release();
  BULKDEL_RETURN_IF_ERROR(tree.FlushMeta());
  return tree;
}

Result<RTree> RTree::Open(BufferPool* pool, PageId meta_page) {
  RTree tree(pool, meta_page);
  BULKDEL_RETURN_IF_ERROR(tree.LoadMeta());
  return tree;
}

Status RTree::LoadMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  if (LoadU32(meta.data()) != kRtreeMagic) {
    return Status::Corruption("bad rtree magic");
  }
  root_ = LoadU32(meta.data() + 4);
  height_ = static_cast<int>(LoadU32(meta.data() + 8));
  entry_count_ = LoadU64(meta.data() + 12);
  num_nodes_ = LoadU32(meta.data() + 20);
  return Status::OK();
}

Status RTree::FlushMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  StoreU32(meta.data(), kRtreeMagic);
  StoreU32(meta.data() + 4, root_);
  StoreU32(meta.data() + 8, static_cast<uint32_t>(height_));
  StoreU64(meta.data() + 12, entry_count_);
  StoreU32(meta.data() + 20, num_nodes_);
  meta.MarkDirty();
  return Status::OK();
}

Result<PageId> RTree::NewNode(uint8_t level) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
  RNode node(page.data());
  node.Init(level);
  page.MarkDirty();
  ++num_nodes_;
  return page.page_id();
}

Status RTree::Insert(const Rect& rect, const Rid& rid) {
  Rect root_mbr;
  BULKDEL_ASSIGN_OR_RETURN(std::optional<Split> split,
                           InsertRec(root_, rect, rid, &root_mbr));
  if (split.has_value()) {
    uint8_t old_level;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(root_));
      old_level = RNode(guard.data()).level();
    }
    BULKDEL_ASSIGN_OR_RETURN(PageId new_root,
                             NewNode(static_cast<uint8_t>(old_level + 1)));
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(new_root));
    RNode node(guard.data());
    node.Append(split->mbr, root_, 0);
    node.Append(split->right_mbr, split->right, 0);
    guard.MarkDirty();
    root_ = new_root;
    ++height_;
  }
  ++entry_count_;
  return Status::OK();
}

Result<std::optional<RTree::Split>> RTree::InsertRec(PageId page,
                                                     const Rect& rect,
                                                     const Rid& rid,
                                                     Rect* node_mbr) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
  RNode node(guard.data());

  if (node.is_leaf()) {
    if (node.Append(rect, rid.page, rid.slot)) {
      guard.MarkDirty();
      *node_mbr = node.ComputeMbr();
      return std::optional<Split>();
    }
    // Overflow: gather everything and split quadratically.
    std::vector<TempEntry> entries;
    entries.reserve(node.count() + 1);
    for (uint16_t i = 0; i < node.count(); ++i) {
      Rid r = node.RidAt(i);
      entries.push_back(TempEntry{node.RectAt(i), r.page, r.slot});
    }
    entries.push_back(TempEntry{rect, rid.page, rid.slot});
    std::vector<TempEntry> left_group, right_group;
    QuadraticSplit(entries, &left_group, &right_group);
    BULKDEL_ASSIGN_OR_RETURN(PageId right_page, NewNode(0));
    node.set_count(0);
    for (const TempEntry& e : left_group) node.Append(e.rect, e.ref, e.slot);
    guard.MarkDirty();
    BULKDEL_ASSIGN_OR_RETURN(PageGuard rguard, pool_->FetchPage(right_page));
    RNode rnode(rguard.data());
    for (const TempEntry& e : right_group) rnode.Append(e.rect, e.ref, e.slot);
    rguard.MarkDirty();
    Split split;
    split.mbr = node.ComputeMbr();
    split.right = right_page;
    split.right_mbr = rnode.ComputeMbr();
    *node_mbr = split.mbr;
    return std::optional<Split>(split);
  }

  // Choose the child needing the least enlargement (ties: smaller area).
  uint16_t best = 0;
  double best_enlargement = 0;
  double best_area = 0;
  for (uint16_t i = 0; i < node.count(); ++i) {
    Rect child_mbr = node.RectAt(i);
    double enlargement = child_mbr.EnlargementTo(rect);
    double area = child_mbr.Area();
    if (i == 0 || enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = i;
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  PageId child = node.ChildAt(best);
  guard.Release();

  Rect child_mbr;
  BULKDEL_ASSIGN_OR_RETURN(std::optional<Split> child_split,
                           InsertRec(child, rect, rid, &child_mbr));

  BULKDEL_ASSIGN_OR_RETURN(PageGuard reguard, pool_->FetchPage(page));
  RNode renode(reguard.data());
  renode.SetRect(best, child_mbr);
  reguard.MarkDirty();
  if (!child_split.has_value()) {
    *node_mbr = renode.ComputeMbr();
    return std::optional<Split>();
  }
  renode.SetRect(best, child_split->mbr);
  if (renode.Append(child_split->right_mbr, child_split->right, 0)) {
    *node_mbr = renode.ComputeMbr();
    return std::optional<Split>();
  }
  // This inner node overflows too.
  std::vector<TempEntry> entries;
  entries.reserve(renode.count() + 1);
  for (uint16_t i = 0; i < renode.count(); ++i) {
    entries.push_back(TempEntry{renode.RectAt(i), renode.ChildAt(i), 0});
  }
  entries.push_back(
      TempEntry{child_split->right_mbr, child_split->right, 0});
  std::vector<TempEntry> left_group, right_group;
  QuadraticSplit(entries, &left_group, &right_group);
  BULKDEL_ASSIGN_OR_RETURN(PageId right_page, NewNode(renode.level()));
  renode.set_count(0);
  for (const TempEntry& e : left_group) renode.Append(e.rect, e.ref, 0);
  reguard.MarkDirty();
  BULKDEL_ASSIGN_OR_RETURN(PageGuard rguard, pool_->FetchPage(right_page));
  RNode rnode(rguard.data());
  for (const TempEntry& e : right_group) rnode.Append(e.rect, e.ref, 0);
  rguard.MarkDirty();
  Split split;
  split.mbr = renode.ComputeMbr();
  split.right = right_page;
  split.right_mbr = rnode.ComputeMbr();
  *node_mbr = split.mbr;
  return std::optional<Split>(split);
}

Status RTree::Delete(const Rect& rect, const Rid& rid) {
  bool found = false, now_empty = false;
  Rect new_mbr;
  BULKDEL_RETURN_IF_ERROR(
      DeleteRec(root_, rect, rid, &found, &now_empty, &new_mbr));
  if (!found) return Status::NotFound("entry not in rtree");
  --entry_count_;
  // Collapse a degenerate root chain.
  while (height_ > 1) {
    PageId only_child = kInvalidPageId;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(root_));
      RNode node(guard.data());
      if (node.is_leaf() || node.count() != 1) break;
      only_child = node.ChildAt(0);
    }
    BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(root_));
    --num_nodes_;
    root_ = only_child;
    --height_;
  }
  return Status::OK();
}

Status RTree::DeleteRec(PageId page, const Rect& rect, const Rid& rid,
                        bool* found, bool* now_empty, Rect* new_mbr) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
  RNode node(guard.data());
  if (node.is_leaf()) {
    for (uint16_t i = 0; i < node.count(); ++i) {
      if (node.RectAt(i) == rect && node.RidAt(i) == rid) {
        node.RemoveAt(i);
        guard.MarkDirty();
        *found = true;
        break;
      }
    }
    *now_empty = node.count() == 0;
    if (!*now_empty) *new_mbr = node.ComputeMbr();
    return Status::OK();
  }
  for (uint16_t i = 0; i < node.count() && !*found; ++i) {
    if (!node.RectAt(i).Contains(rect)) continue;
    PageId child = node.ChildAt(i);
    bool child_empty = false;
    Rect child_mbr;
    // Release while recursing to bound pin depth; re-fetch after.
    guard.Release();
    BULKDEL_RETURN_IF_ERROR(
        DeleteRec(child, rect, rid, found, &child_empty, &child_mbr));
    BULKDEL_ASSIGN_OR_RETURN(guard, pool_->FetchPage(page));
    node = RNode(guard.data());
    if (!*found) continue;
    if (child_empty) {
      BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(child));
      --num_nodes_;
      node.RemoveAt(i);
    } else {
      node.SetRect(i, child_mbr);
    }
    guard.MarkDirty();
    break;
  }
  *now_empty = node.count() == 0;
  if (!*now_empty) *new_mbr = node.ComputeMbr();
  return Status::OK();
}

Status RTree::SearchIntersect(
    const Rect& query,
    const std::function<Status(const Rect&, const Rid&)>& visitor) {
  // Iterative DFS with an explicit stack keeps pin depth at one.
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
    RNode node(guard.data());
    for (uint16_t i = 0; i < node.count(); ++i) {
      if (!node.RectAt(i).Intersects(query)) continue;
      if (node.is_leaf()) {
        BULKDEL_RETURN_IF_ERROR(visitor(node.RectAt(i), node.RidAt(i)));
      } else {
        stack.push_back(node.ChildAt(i));
      }
    }
  }
  return Status::OK();
}

Status RTree::ScanAll(
    const std::function<Status(const Rect&, const Rid&)>& visitor) {
  return SearchIntersect(
      Rect{INT64_MIN / 2, INT64_MIN / 2, INT64_MAX / 2, INT64_MAX / 2},
      visitor);
}

Status RTree::BulkDeleteByRids(const std::vector<Rid>& rids,
                               RtreeBulkDeleteStats* stats) {
  RtreeBulkDeleteStats local;
  U64HashSet set(rids.size());
  for (const Rid& rid : rids) set.Insert(rid.Pack());
  bool root_empty = false;
  Rect root_mbr;
  BULKDEL_RETURN_IF_ERROR(BulkDeleteRec(
      root_,
      [&](const Rid& rid) { return set.Contains(rid.Pack()); }, &local,
      &root_empty, &root_mbr));
  entry_count_ -= local.entries_deleted;
  // The root may have degenerated: collapse inner chains of one child; an
  // empty leaf root simply stays (empty tree).
  while (height_ > 1) {
    PageId only_child = kInvalidPageId;
    bool empty_inner = false;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(root_));
      RNode node(guard.data());
      if (node.is_leaf()) break;
      if (node.count() == 1) {
        only_child = node.ChildAt(0);
      } else if (node.count() == 0) {
        empty_inner = true;
      } else {
        break;
      }
    }
    BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(root_));
    --num_nodes_;
    ++local.nodes_freed;
    if (empty_inner) {
      BULKDEL_ASSIGN_OR_RETURN(PageId fresh, NewNode(0));
      root_ = fresh;
      height_ = 1;
      break;
    }
    root_ = only_child;
    --height_;
  }
  BULKDEL_RETURN_IF_ERROR(FlushMeta());
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status RTree::BulkDeleteRec(PageId page,
                            const std::function<bool(const Rid&)>& pred,
                            RtreeBulkDeleteStats* stats, bool* now_empty,
                            Rect* new_mbr) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
  RNode node(guard.data());
  if (node.is_leaf()) {
    ++stats->leaves_visited;
    bool modified = false;
    uint16_t i = 0;
    while (i < node.count()) {
      if (pred(node.RidAt(i))) {
        node.RemoveAt(i);
        ++stats->entries_deleted;
        modified = true;
      } else {
        ++i;
      }
    }
    if (modified) guard.MarkDirty();
    *now_empty = node.count() == 0;
    if (!*now_empty) *new_mbr = node.ComputeMbr();
    return Status::OK();
  }
  ++stats->inner_visited;
  // Copy the child list out so recursion holds one pin at a time.
  std::vector<PageId> children;
  for (uint16_t i = 0; i < node.count(); ++i) {
    children.push_back(node.ChildAt(i));
  }
  guard.Release();
  std::vector<bool> empty(children.size());
  std::vector<Rect> mbrs(children.size());
  for (size_t i = 0; i < children.size(); ++i) {
    bool child_empty = false;
    BULKDEL_RETURN_IF_ERROR(
        BulkDeleteRec(children[i], pred, stats, &child_empty, &mbrs[i]));
    empty[i] = child_empty;
    if (child_empty) {
      BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(children[i]));
      --num_nodes_;
      ++stats->nodes_freed;
    }
  }
  BULKDEL_ASSIGN_OR_RETURN(guard, pool_->FetchPage(page));
  node = RNode(guard.data());
  // Rewrite surviving children with tightened MBRs.
  uint16_t write = 0;
  for (uint16_t i = 0; i < node.count(); ++i) {
    PageId child = node.ChildAt(i);
    for (size_t j = 0; j < children.size(); ++j) {
      if (children[j] != child) continue;
      if (!empty[j]) {
        node.Set(write, mbrs[j], child, 0);
        ++write;
      }
      break;
    }
  }
  node.set_count(write);
  guard.MarkDirty();
  *now_empty = write == 0;
  if (!*now_empty) *new_mbr = node.ComputeMbr();
  return Status::OK();
}

namespace {
struct RCheckContext {
  BufferPool* pool;
  uint64_t entries = 0;
  uint32_t nodes = 0;
};

Status CheckRNode(RCheckContext* ctx, PageId page, int expected_level,
                  const Rect* bound) {
  char buf[kPageSize];
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, ctx->pool->FetchPage(page));
    std::memcpy(buf, guard.data(), kPageSize);
  }
  RNode node(buf);
  if (node.level() != expected_level) {
    return Status::Corruption("rtree level mismatch");
  }
  ++ctx->nodes;
  for (uint16_t i = 0; i < node.count(); ++i) {
    if (bound != nullptr && !bound->Contains(node.RectAt(i))) {
      return Status::Corruption("rtree entry escapes parent MBR");
    }
  }
  if (node.is_leaf()) {
    ctx->entries += node.count();
    return Status::OK();
  }
  for (uint16_t i = 0; i < node.count(); ++i) {
    Rect child_bound = node.RectAt(i);
    BULKDEL_RETURN_IF_ERROR(
        CheckRNode(ctx, node.ChildAt(i), expected_level - 1, &child_bound));
  }
  return Status::OK();
}
}  // namespace

Status RTree::CheckInvariants() {
  RCheckContext ctx;
  ctx.pool = pool_;
  BULKDEL_RETURN_IF_ERROR(CheckRNode(&ctx, root_, height_ - 1, nullptr));
  if (ctx.entries != entry_count_) {
    return Status::Corruption("rtree entry count mismatch");
  }
  if (ctx.nodes != num_nodes_) {
    return Status::Corruption("rtree node count mismatch");
  }
  return Status::OK();
}

}  // namespace bulkdel

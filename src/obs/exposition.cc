#include "obs/exposition.h"

#include <cctype>

namespace bulkdel {
namespace obs {

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "bulkdel_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

namespace {

void AppendType(std::string* out, const std::string& prom_name,
                const char* type) {
  *out += "# TYPE ";
  *out += prom_name;
  *out += ' ';
  *out += type;
  *out += '\n';
}

void AppendSample(std::string* out, const std::string& prom_name, int64_t v) {
  *out += prom_name;
  *out += ' ';
  *out += std::to_string(v);
  *out += '\n';
}

}  // namespace

std::string PrometheusText(
    const MetricsSnapshot& snap,
    const std::vector<std::pair<std::string, int64_t>>& extra_gauges) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    std::string prom = PrometheusMetricName(name);
    const MetricInfo* info = FindKnownMetric(name);
    // The snapshot flattens counters and gauges into one list; recover the
    // kind from the static metric table. Dynamic names export untyped.
    if (info == nullptr) {
      AppendType(&out, prom, "untyped");
    } else if (info->kind == MetricKind::kGauge) {
      AppendType(&out, prom, "gauge");
    } else {
      AppendType(&out, prom, "counter");
    }
    AppendSample(&out, prom, value);
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    std::string prom = PrometheusMetricName(h.name);
    AppendType(&out, prom, "histogram");
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      out += prom;
      out += "_bucket{le=\"";
      out += std::to_string(Histogram::BucketUpperBound(static_cast<int>(b)));
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += prom;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(h.count);
    out += '\n';
    AppendSample(&out, prom + "_sum", h.sum);
    AppendSample(&out, prom + "_count", h.count);
  }
  for (const auto& [name, value] : extra_gauges) {
    std::string prom = PrometheusMetricName(name);
    AppendType(&out, prom, "gauge");
    AppendSample(&out, prom, value);
  }
  return out;
}

}  // namespace obs
}  // namespace bulkdel

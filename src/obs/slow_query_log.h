#ifndef BULKDEL_OBS_SLOW_QUERY_LOG_H_
#define BULKDEL_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "util/status.h"

namespace bulkdel {
namespace obs {

/// Append-only JSONL sink for statements that exceeded a latency threshold.
///
/// The log is deliberately dumb: the SQL layer decides what a record looks
/// like (docs/OBSERVABILITY.md documents the layout — statement text,
/// elapsed time, metrics delta and, for DELETEs, the full BulkDeleteReport
/// whose phase spans bulkdel_tracecat --slowlog consumes); this class only
/// owns the threshold, the file handle and the append mutex. Appends go to
/// the host filesystem directly — never through the DiskManager — so slow
/// query capture cannot perturb simulated I/O.
///
/// Thread-safe: sessions on different threads share one instance.
class SlowQueryLog {
 public:
  /// Opens `path` for appending. `threshold_ns` <= 0 disables capture
  /// (Exceeds always false). Open failure also disables capture; the
  /// status is kept for the owner to report.
  SlowQueryLog(const std::string& path, int64_t threshold_ns);

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  bool enabled() const { return enabled_; }
  Status open_status() const { return open_status_; }
  int64_t threshold_ns() const { return threshold_ns_; }
  const std::string& path() const { return path_; }

  bool Exceeds(int64_t elapsed_ns) const {
    return enabled_ && elapsed_ns > threshold_ns_;
  }

  /// Appends one record (a complete JSON object, no trailing newline) and
  /// flushes so a crash or a concurrent reader sees whole lines.
  Status Append(const std::string& json_record);

  uint64_t records() const {
    return records_.load(std::memory_order_relaxed);
  }

 private:
  std::string path_;
  int64_t threshold_ns_;
  bool enabled_ = false;
  Status open_status_;
  std::mutex mu_;
  std::ofstream out_;
  std::atomic<uint64_t> records_{0};
};

}  // namespace obs
}  // namespace bulkdel

#endif  // BULKDEL_OBS_SLOW_QUERY_LOG_H_

#include "obs/slow_query_log.h"

namespace bulkdel {
namespace obs {

SlowQueryLog::SlowQueryLog(const std::string& path, int64_t threshold_ns)
    : path_(path), threshold_ns_(threshold_ns) {
  if (threshold_ns_ <= 0 || path_.empty()) {
    open_status_ = Status::OK();  // capture off by configuration
    return;
  }
  out_.open(path_, std::ios::out | std::ios::app);
  if (!out_.is_open()) {
    open_status_ = Status::IOError("cannot open slow-query log " + path_);
    return;
  }
  enabled_ = true;
}

Status SlowQueryLog::Append(const std::string& json_record) {
  if (!enabled_) return Status::FailedPrecondition("slow-query log disabled");
  std::lock_guard<std::mutex> lock(mu_);
  out_ << json_record << '\n';
  out_.flush();
  if (!out_.good()) {
    return Status::IOError("slow-query log write failed: " + path_);
  }
  records_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace obs
}  // namespace bulkdel

#ifndef BULKDEL_OBS_STATEMENT_REGISTRY_H_
#define BULKDEL_OBS_STATEMENT_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace bulkdel {
namespace obs {

/// One row of `sys.statements`: a statement currently executing or one of
/// the most recently finished ones. `delta` is the statement's metrics
/// delta — live (registry-now minus statement-begin) for in-flight rows,
/// final for finished rows.
struct StatementRow {
  uint64_t id = 0;
  uint64_t session_id = 0;  ///< 0 = anonymous (embedded shell / tests)
  bool finished = false;
  bool ok = true;           ///< meaningful once finished
  std::string phase;        ///< most recently begun executor phase
  int64_t elapsed_nanos = 0;
  uint64_t rows = 0;        ///< rows deleted (DELETE statements)
  std::string statement;    ///< truncated to kStatementTextCap
  MetricsSnapshot delta;
};

/// One row of `sys.sessions`.
struct SessionRow {
  uint64_t id = 0;
  std::string peer;
  int64_t elapsed_nanos = 0;
  uint64_t statements = 0;       ///< statements finished on this session
  uint64_t inflight_statement = 0;  ///< 0 = idle
};

/// Process-wide registry of live SQL sessions and statements — the backing
/// store of the sys.sessions / sys.statements virtual tables and the
/// per-statement attribution that slow-query capture reads.
///
/// One registry serves the whole process (Global()), mirroring
/// TraceRecorder: worker threads spawned by any statement attribute their
/// phases to the statement that started them via a thread-local statement
/// id, captured by ExecContext on the statement thread and published to
/// PhaseScope on whichever thread runs the phase.
///
/// Everything here is plain memory behind one mutex — registration,
/// phase updates and snapshots never perform I/O and never touch the
/// DiskManager, so simulated per-phase I/O stays bit-identical with the
/// observability plane on or off (the PR 4 identity invariant; asserted by
/// obs_test).
class StatementRegistry {
 public:
  static StatementRegistry& Global();

  /// Statement text kept per row; longer statements are truncated (the
  /// slow-query log keeps more — see SlowQueryLog).
  static constexpr size_t kStatementTextCap = 512;
  /// Finished statements retained for sys.statements, newest first.
  static constexpr size_t kRecentStatements = 32;

  StatementRegistry() = default;
  StatementRegistry(const StatementRegistry&) = delete;
  StatementRegistry& operator=(const StatementRegistry&) = delete;

  // -- Sessions ---------------------------------------------------------------
  /// Registers a connection; returns its registry id (never 0). `peer` is a
  /// human-readable origin label ("tcp:3", "shell").
  uint64_t RegisterSession(const std::string& peer);
  void UnregisterSession(uint64_t session_id);

  // -- Statements -------------------------------------------------------------
  /// Marks a statement in flight and snapshots `metrics` (may be null) so
  /// in-flight rows report a live delta. Returns the statement id (never 0).
  /// Callers normally use StatementScope instead.
  uint64_t BeginStatement(uint64_t session_id, const std::string& text,
                          MetricsRegistry* metrics);
  /// Records the most recently begun phase; called by PhaseScope from
  /// whichever thread runs the phase. Unknown ids are ignored (the statement
  /// already finished).
  void SetPhase(uint64_t statement_id, const std::string& phase);
  /// Moves the statement to the finished ring with its final metrics delta.
  void EndStatement(uint64_t statement_id, bool ok, uint64_t rows);

  // -- Snapshots (sys.* tables, /metrics) -------------------------------------
  /// In-flight statements (oldest first), then recent finished ones (newest
  /// first). In-flight rows carry live elapsed/delta computed at call time.
  std::vector<StatementRow> Statements() const;
  std::vector<SessionRow> Sessions() const;
  int64_t sessions_active() const;
  int64_t statements_inflight() const;
  int64_t statements_begun() const;

  /// The statement id the calling thread is executing under, or 0. Captured
  /// by ExecContext so worker threads inherit it from the statement thread.
  static uint64_t CurrentThreadStatement();

  /// Drops all state (test seam; callers must ensure no statement is in
  /// flight).
  void Reset();

 private:
  struct SessionState {
    std::string peer;
    int64_t begin_nanos = 0;
    uint64_t statements = 0;
    uint64_t inflight_statement = 0;
  };
  struct StatementState {
    uint64_t session_id = 0;
    std::string text;
    std::string phase;
    int64_t begin_nanos = 0;
    MetricsRegistry* metrics = nullptr;  ///< alive while the statement runs
    MetricsSnapshot begin_metrics;
  };

  mutable std::mutex mu_;
  uint64_t next_session_id_ = 1;
  uint64_t next_statement_id_ = 1;
  uint64_t statements_begun_ = 0;
  std::map<uint64_t, SessionState> sessions_;
  std::map<uint64_t, StatementState> inflight_;
  std::deque<StatementRow> recent_;  ///< newest first, bounded
};

/// RAII registration of one statement in the global registry. Construct on
/// the statement thread before parsing; the destructor finishes the row.
/// Sets the thread-local statement id for the scope's lifetime (saving and
/// restoring any outer value, so nested ExecuteStatement calls attribute to
/// the innermost statement).
class StatementScope {
 public:
  StatementScope(uint64_t session_id, const std::string& text,
                 MetricsRegistry* metrics);
  ~StatementScope();

  StatementScope(const StatementScope&) = delete;
  StatementScope& operator=(const StatementScope&) = delete;

  uint64_t id() const { return id_; }
  int64_t ElapsedNanos() const;
  void set_ok(bool ok) { ok_ = ok; }
  void set_rows(uint64_t rows) { rows_ = rows; }

 private:
  uint64_t id_;
  uint64_t saved_thread_statement_;
  int64_t begin_nanos_;
  bool ok_ = true;
  uint64_t rows_ = 0;
};

}  // namespace obs
}  // namespace bulkdel

#endif  // BULKDEL_OBS_STATEMENT_REGISTRY_H_

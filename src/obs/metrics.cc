#include "obs/metrics.h"

#include <algorithm>

namespace bulkdel {
namespace obs {

const std::vector<MetricInfo>& KnownMetrics() {
  static const std::vector<MetricInfo> kMetrics = {
      {metric_names::kBpFetchNs, MetricKind::kHistogram, "ns"},
      {metric_names::kBpLatchWaitNs, MetricKind::kHistogram, "ns"},
      {metric_names::kIdxLatchWaitNs, MetricKind::kHistogram, "ns"},
      {metric_names::kWalSyncRecords, MetricKind::kHistogram, "records"},
      {metric_names::kWalSyncNs, MetricKind::kHistogram, "ns"},
      {metric_names::kSchedQueueDepth, MetricKind::kHistogram, "tasks"},
      {metric_names::kLeafPagesReorganized, MetricKind::kHistogram, "pages"},
      {metric_names::kSchedPhasesDispatched, MetricKind::kCounter, "count"},
      {metric_names::kCkptInline, MetricKind::kCounter, "count"},
      {metric_names::kCkptDeferred, MetricKind::kCounter, "count"},
      {metric_names::kWalSyncs, MetricKind::kCounter, "count"},
      {metric_names::kWalFsyncs, MetricKind::kCounter, "count"},
      {metric_names::kWalGroupSize, MetricKind::kHistogram, "records"},
      {metric_names::kWalFsyncNs, MetricKind::kHistogram, "ns"},
      {metric_names::kDiskWriteRuns, MetricKind::kCounter, "count"},
      {metric_names::kDiskSyncs, MetricKind::kCounter, "count"},
      {metric_names::kSideFileAppends, MetricKind::kCounter, "count"},
      {metric_names::kSideFileDepth, MetricKind::kGauge, "records"},
      {metric_names::kSideFileSpillPages, MetricKind::kCounter, "count"},
      {metric_names::kSideFileDrainBatch, MetricKind::kHistogram, "records"},
      {metric_names::kSideFileCatchupNs, MetricKind::kHistogram, "ns"},
      {metric_names::kNetConns, MetricKind::kGauge, "count"},
      {metric_names::kNetAccepted, MetricKind::kCounter, "count"},
      {metric_names::kNetRejected, MetricKind::kCounter, "count"},
      {metric_names::kNetBytesIn, MetricKind::kCounter, "count"},
      {metric_names::kNetBytesOut, MetricKind::kCounter, "count"},
      {metric_names::kNetReqNs, MetricKind::kHistogram, "ns"},
  };
  return kMetrics;
}

const MetricInfo* FindKnownMetric(const std::string& name) {
  for (const MetricInfo& info : KnownMetrics()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 63) return INT64_MAX;
  return (int64_t{1} << bucket) - 1;
}

namespace {

/// Index of the log2 bucket containing the quantile, or -1 when empty.
int QuantileBucket(const HistogramSnapshot& h, double quantile) {
  if (h.count <= 0) return -1;
  int64_t rank = static_cast<int64_t>(quantile * static_cast<double>(h.count));
  if (rank >= h.count) rank = h.count - 1;
  int64_t seen = 0;
  for (size_t b = 0; b < h.buckets.size(); ++b) {
    seen += h.buckets[b];
    if (seen > rank) return static_cast<int>(b);
  }
  return static_cast<int>(h.buckets.size()) - 1;
}

}  // namespace

int64_t HistogramSnapshot::ApproxQuantile(double quantile) const {
  int bucket = QuantileBucket(*this, quantile);
  return bucket < 0 ? 0 : Histogram::BucketUpperBound(bucket);
}

int64_t HistogramSnapshot::ApproxQuantileLo(double quantile) const {
  int bucket = QuantileBucket(*this, quantile);
  // Bucket b holds (2^(b-1) - 1, 2^b - 1]; its lower edge is the previous
  // bucket's upper bound (bucket 0 holds exactly 0, so lo == hi there).
  return bucket <= 0 ? 0 : Histogram::BucketUpperBound(bucket - 1);
}

HistogramSnapshot HistogramSnapshot::operator-(
    const HistogramSnapshot& o) const {
  HistogramSnapshot d;
  d.name = name;
  d.count = count - o.count;
  d.sum = sum - o.sum;
  d.buckets.resize(std::max(buckets.size(), o.buckets.size()), 0);
  for (size_t b = 0; b < d.buckets.size(); ++b) {
    int64_t lhs = b < buckets.size() ? buckets[b] : 0;
    int64_t rhs = b < o.buckets.size() ? o.buckets[b] : 0;
    d.buckets[b] = lhs - rhs;
  }
  while (!d.buckets.empty() && d.buckets.back() == 0) d.buckets.pop_back();
  return d;
}

namespace {

/// `other`'s value for `name`, or 0 when absent (a metric registered after
/// the `before` snapshot was taken contributes its full value to the delta).
int64_t CounterIn(const MetricsSnapshot& other, const std::string& name,
                  size_t position_hint) {
  if (position_hint < other.counters.size() &&
      other.counters[position_hint].first == name) {
    return other.counters[position_hint].second;
  }
  for (const auto& [n, v] : other.counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* HistogramIn(const MetricsSnapshot& other,
                                     const std::string& name,
                                     size_t position_hint) {
  if (position_hint < other.histograms.size() &&
      other.histograms[position_hint].name == name) {
    return &other.histograms[position_hint];
  }
  for (const HistogramSnapshot& h : other.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace

MetricsSnapshot MetricsSnapshot::operator-(const MetricsSnapshot& o) const {
  MetricsSnapshot d;
  d.counters.reserve(counters.size());
  for (size_t i = 0; i < counters.size(); ++i) {
    d.counters.emplace_back(counters[i].first,
                            counters[i].second -
                                CounterIn(o, counters[i].first, i));
  }
  d.histograms.reserve(histograms.size());
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot* rhs = HistogramIn(o, histograms[i].name, i);
    if (rhs != nullptr) {
      d.histograms.push_back(histograms[i] - *rhs);
    } else {
      d.histograms.push_back(histograms[i]);
    }
  }
  return d;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

int64_t MetricsSnapshot::CounterOr(const std::string& name,
                                   int64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

MetricsRegistry::MetricsRegistry() {
  for (const MetricInfo& info : KnownMetrics()) {
    switch (info.kind) {
      case MetricKind::kCounter:
        counter(info.name);
        break;
      case MetricKind::kGauge:
        gauge(info.name);
        break;
      case MetricKind::kHistogram:
        histogram(info.name);
        break;
    }
  }
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, c] : counters_) {
    if (n == name) return c.get();
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return counters_.back().second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, g] : gauges_) {
    if (n == name) return g.get();
  }
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return gauges_.back().second.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return h.get();
  }
  histograms_.emplace_back(name, std::make_unique<Histogram>());
  return histograms_.back().second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.counters.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    int top = Histogram::kBuckets;
    while (top > 0 && h->bucket(top - 1) == 0) --top;
    hs.buckets.reserve(static_cast<size_t>(top));
    for (int b = 0; b < top; ++b) hs.buckets.push_back(h->bucket(b));
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

}  // namespace obs
}  // namespace bulkdel

#ifndef BULKDEL_OBS_METRICS_H_
#define BULKDEL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace bulkdel {
namespace obs {

/// Canonical metric names. Instrumentation sites register with these so
/// Explain() can enumerate the names a statement will populate (the
/// observability analogue of fault_sites — see docs/OBSERVABILITY.md). Keep
/// this list in sync with KnownMetrics().
namespace metric_names {
/// Histogram, ns: BufferPool::FetchPage end-to-end latency (hit or miss).
inline constexpr char kBpFetchNs[] = "bp.fetch_ns";
/// Histogram, ns: wait to acquire the page's shard latch in FetchPage.
inline constexpr char kBpLatchWaitNs[] = "bp.latch_wait_ns";
/// Histogram, ns: wait to acquire an off-line index's latch in the
/// secondary-index delete passes.
inline constexpr char kIdxLatchWaitNs[] = "idx.latch_wait_ns";
/// Histogram, records: LogManager::Sync batch size.
inline constexpr char kWalSyncRecords[] = "wal.sync_records";
/// Histogram, ns: LogManager::Sync host latency.
inline constexpr char kWalSyncNs[] = "wal.sync_ns";
/// Histogram, tasks: scheduler ready-queue depth sampled at each dispatch.
inline constexpr char kSchedQueueDepth[] = "sched.queue_depth";
/// Histogram, pages: leaves freed/merged per bulk-delete leaf pass (one
/// observation per index/table phase).
inline constexpr char kLeafPagesReorganized[] = "leaf.pages_reorganized";
/// Counter: phase bodies dispatched by the scheduler.
inline constexpr char kSchedPhasesDispatched[] = "sched.phases_dispatched";
/// Counter: phase-end checkpoints taken inline (durable at phase end).
inline constexpr char kCkptInline[] = "ckpt.inline";
/// Counter: phase-end checkpoints deferred to the finalize node.
inline constexpr char kCkptDeferred[] = "ckpt.deferred";
/// Counter: LogManager::Sync calls.
inline constexpr char kWalSyncs[] = "wal.syncs";
/// Counter: WAL flush batches (one leader fsync each with the file backend).
/// Under group commit this stays well below wal.syncs when syncers coalesce.
inline constexpr char kWalFsyncs[] = "wal.fsyncs";
/// Histogram, records: records covered per WAL flush batch (group-commit
/// coalescing factor).
inline constexpr char kWalGroupSize[] = "wal.group_size";
/// Histogram, ns: host latency of one WAL backend append + fsync (file
/// backend only; the sim backend observes nothing here).
inline constexpr char kWalFsyncNs[] = "wal.fsync_ns";
/// Counter: sequential write runs issued by DiskManager::WriteRun.
inline constexpr char kDiskWriteRuns[] = "disk.write_runs";
/// Counter: DiskManager::Flush barriers (one fsync each with the file
/// backend), taken at checkpoint/commit boundaries.
inline constexpr char kDiskSyncs[] = "disk.syncs";
/// Counter: §3.1 updater ops appended to off-line indices' side-files.
inline constexpr char kSideFileAppends[] = "sidefile.appends";
/// Gauge, records: side-file depth (ops not yet caught up), sampled by the
/// catch-up drain.
inline constexpr char kSideFileDepth[] = "sidefile.depth";
/// Counter: scratch pages allocated by side-file shard spills.
inline constexpr char kSideFileSpillPages[] = "sidefile.spill_pages";
/// Histogram, records: side-file ops applied per catch-up batch.
inline constexpr char kSideFileDrainBatch[] = "sidefile.drain_batch";
/// Histogram, ns: host latency of one catch-up batch (sort + merge apply).
inline constexpr char kSideFileCatchupNs[] = "sidefile.catchup_ns";
/// Gauge, count: currently connected network sessions (src/net server).
inline constexpr char kNetConns[] = "net.conns";
/// Counter: connections admitted by the server's accept loop.
inline constexpr char kNetAccepted[] = "net.accepted";
/// Counter: connections refused because max_sessions were already active.
inline constexpr char kNetRejected[] = "net.rejected";
/// Counter: request-frame payload bytes received across all sessions.
inline constexpr char kNetBytesIn[] = "net.bytes_in";
/// Counter: response-frame payload bytes sent across all sessions.
inline constexpr char kNetBytesOut[] = "net.bytes_out";
/// Histogram, ns: server-side statement latency — frame decoded to response
/// written (the end-to-end number minus client-side socket time).
inline constexpr char kNetReqNs[] = "net.req_ns";
}  // namespace metric_names

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricInfo {
  const char* name;
  MetricKind kind;
  const char* unit;  ///< "ns", "pages", "records", "tasks", "count"
};

/// Static enumeration of every metric the library registers, for Explain()
/// and docs. A registry may additionally hold dynamically registered names.
const std::vector<MetricInfo>& KnownMetrics();

/// KnownMetrics() entry for `name`, or null for dynamically registered
/// names (which report as counters of unknown unit).
const MetricInfo* FindKnownMetric(const std::string& name);

/// Monotonic counter; relaxed increments, safe from any thread.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins gauge; relaxed store/load, safe from any thread.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Log2-bucket histogram of non-negative 64-bit samples. Bucket b counts
/// samples whose bit width is b: bucket 0 holds v == 0, bucket b >= 1 holds
/// 2^(b-1) <= v < 2^b. 65 buckets cover the full int64 range; counts and the
/// running sum are relaxed atomics so Observe is wait-free and safe from any
/// thread, and Snapshot may run concurrently (it sees some consistent-enough
/// interleaving, exact once writers quiesce).
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void Observe(int64_t value) {
    if (value < 0) value = 0;
    int bucket = BucketOf(value);
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  static int BucketOf(int64_t value) {
    int b = 0;
    uint64_t v = static_cast<uint64_t>(value);
    while (v != 0) {
      ++b;
      v >>= 1;
    }
    return b;
  }
  /// Inclusive upper bound of bucket b (2^b - 1; bucket 0 -> 0).
  static int64_t BucketUpperBound(int bucket);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Point-in-time copy of one histogram; buckets trimmed of trailing zeros.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  std::vector<int64_t> buckets;

  /// Value below which `quantile` (0..1) of the samples fall, estimated at
  /// bucket granularity (returns the containing bucket's upper bound).
  int64_t ApproxQuantile(double quantile) const;

  /// Lower edge of the same containing bucket: the quantile lies in
  /// (ApproxQuantileLo(q), ApproxQuantile(q)]. Quantization is a full power
  /// of two, so consumers that report only the upper bound overstate by up
  /// to 2x; report both (loadgen's *_lo JSON fields).
  int64_t ApproxQuantileLo(double quantile) const;

  HistogramSnapshot operator-(const HistogramSnapshot& o) const;
  bool operator==(const HistogramSnapshot& o) const {
    return name == o.name && count == o.count && sum == o.sum &&
           buckets == o.buckets;
  }
};

/// Point-in-time copy of a whole registry, in registration order. Supports
/// subtraction so per-statement deltas come from two snapshots of the same
/// registry (names are matched positionally; both sides must come from the
/// same registry, which registers the known metrics in a fixed order).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;  ///< and gauges
  std::vector<HistogramSnapshot> histograms;

  MetricsSnapshot operator-(const MetricsSnapshot& o) const;
  bool operator==(const MetricsSnapshot& o) const {
    return counters == o.counters && histograms == o.histograms;
  }
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
  int64_t CounterOr(const std::string& name, int64_t fallback = 0) const;
  bool Empty() const { return counters.empty() && histograms.empty(); }
};

/// Named metric registry. Registration (name -> instrument) takes a mutex;
/// instrumentation sites resolve their instruments once at wiring time and
/// then increment/observe through raw pointers, so the hot path never locks.
/// Instruments live as long as the registry.
class MetricsRegistry {
 public:
  /// Registers every KnownMetrics() entry up front so snapshots of any two
  /// registries are positionally comparable.
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Look up (registering on first use) by name. Pointers stay valid for the
  /// registry's lifetime. A name keeps its first kind: asking for a counter
  /// under a histogram's name returns a distinct instrument suffixed "!kind"
  /// rather than aliasing.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  // Registration order preserved for positional snapshot deltas.
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

}  // namespace obs
}  // namespace bulkdel

#endif  // BULKDEL_OBS_METRICS_H_

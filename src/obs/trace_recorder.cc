#include "obs/trace_recorder.h"

#include <algorithm>
#include <cstdio>

#include "util/json.h"

namespace bulkdel {
namespace obs {

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kPhase:
      return "phase";
    case TraceCategory::kSched:
      return "sched";
    case TraceCategory::kPool:
      return "pool";
    case TraceCategory::kReadahead:
      return "readahead";
    case TraceCategory::kDisk:
      return "disk";
    case TraceCategory::kWal:
      return "wal";
    case TraceCategory::kCheckpoint:
      return "checkpoint";
    case TraceCategory::kLatch:
      return "latch";
  }
  return "unknown";
}

const std::vector<const char*>& KnownTraceCategories() {
  static const std::vector<const char*> kCategories = [] {
    std::vector<const char*> names;
    for (int c = 0; c < kNumTraceCategories; ++c) {
      names.push_back(TraceCategoryName(static_cast<TraceCategory>(c)));
    }
    return names;
  }();
  return kCategories;
}

namespace {

/// Distinguishes recorder instances so the thread-local buffer cache can
/// never hand a stale buffer to a different (possibly reallocated) recorder.
std::atomic<uint64_t> g_recorder_ids{0};

struct TlsCache {
  uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local TlsCache tls_cache;

uint64_t NextRecorderId() {
  return g_recorder_ids.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Recorder id lives beside the object, not in the header-visible layout.
struct RecorderId {
  uint64_t value = NextRecorderId();
};

void CopyTruncated(char* dst, size_t cap, std::string_view src) {
  size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

// One id per recorder, keyed by address while alive. Kept in a side map so
// TraceEvent/ThreadBuffer layouts stay POD-simple.
static std::mutex g_id_mu;
static std::vector<std::pair<const TraceRecorder*, uint64_t>> g_ids;

static uint64_t IdOf(const TraceRecorder* recorder) {
  std::lock_guard<std::mutex> lock(g_id_mu);
  for (auto& [r, id] : g_ids) {
    if (r == recorder) return id;
  }
  g_ids.emplace_back(recorder, NextRecorderId());
  return g_ids.back().second;
}

static void DropId(const TraceRecorder* recorder) {
  std::lock_guard<std::mutex> lock(g_id_mu);
  for (auto it = g_ids.begin(); it != g_ids.end(); ++it) {
    if (it->first == recorder) {
      g_ids.erase(it);
      return;
    }
  }
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* instance = new TraceRecorder();  // never destroyed
  return *instance;
}

TraceRecorder::TraceRecorder() { IdOf(this); }

TraceRecorder::~TraceRecorder() { DropId(this); }

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  uint64_t my_id = IdOf(this);
  if (tls_cache.recorder_id == my_id && tls_cache.buffer != nullptr) {
    return static_cast<ThreadBuffer*>(tls_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto buffer = std::make_unique<ThreadBuffer>(
      static_cast<uint32_t>(buffers_.size()), thread_capacity_);
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  tls_cache.recorder_id = my_id;
  tls_cache.buffer = raw;
  return raw;
}

TraceEvent* TraceRecorder::SlotForWrite(ThreadBuffer* buffer) {
  uint64_t index = buffer->published.load(std::memory_order_relaxed);
  if (index >= buffer->capacity) {
    // Ring full: drop the new event (never overwrite — published slots are
    // immutable, which is what makes concurrent export race-free).
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  size_t chunk_index = static_cast<size_t>(index / kChunkEvents);
  TraceEvent* chunk =
      buffer->chunks[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    auto fresh = std::make_unique<TraceEvent[]>(kChunkEvents);
    chunk = fresh.get();
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      buffer->owned.push_back(std::move(fresh));
    }
    buffer->chunks[chunk_index].store(chunk, std::memory_order_release);
  }
  return &chunk[index % kChunkEvents];
}

void TraceRecorder::RecordComplete(TraceCategory category,
                                   std::string_view name, int64_t begin_nanos,
                                   int64_t end_nanos, const char* arg_name,
                                   int64_t arg, std::string_view parent) {
  if (!enabled()) return;
  ThreadBuffer* buffer = BufferForThisThread();
  TraceEvent* slot = SlotForWrite(buffer);
  if (slot == nullptr) return;
  slot->kind = TraceEvent::Kind::kComplete;
  slot->category = category;
  slot->ts_nanos = begin_nanos;
  slot->dur_nanos = end_nanos - begin_nanos;
  slot->arg_name = arg_name;
  slot->arg = arg;
  CopyTruncated(slot->name, TraceEvent::kNameCapacity, name);
  CopyTruncated(slot->detail, TraceEvent::kDetailCapacity, parent);
  buffer->published.fetch_add(1, std::memory_order_release);
}

void TraceRecorder::RecordInstant(TraceCategory category,
                                  std::string_view name, const char* arg_name,
                                  int64_t arg) {
  if (!enabled()) return;
  ThreadBuffer* buffer = BufferForThisThread();
  TraceEvent* slot = SlotForWrite(buffer);
  if (slot == nullptr) return;
  slot->kind = TraceEvent::Kind::kInstant;
  slot->category = category;
  slot->ts_nanos = MonotonicNanos();
  slot->dur_nanos = 0;
  slot->arg_name = arg_name;
  slot->arg = arg;
  CopyTruncated(slot->name, TraceEvent::kNameCapacity, name);
  slot->detail[0] = '\0';
  buffer->published.fetch_add(1, std::memory_order_release);
}

std::string TraceRecorder::ToChromeTraceJson() const {
  struct Ref {
    const TraceEvent* event;
    uint32_t tid;
  };
  std::vector<Ref> refs;
  uint64_t dropped = 0;
  uint32_t max_tid = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const auto& buffer : buffers_) {
      uint64_t published = buffer->published.load(std::memory_order_acquire);
      dropped += buffer->dropped.load(std::memory_order_relaxed);
      max_tid = std::max(max_tid, buffer->tid);
      for (uint64_t i = 0; i < published; ++i) {
        const TraceEvent* chunk =
            buffer->chunks[static_cast<size_t>(i / kChunkEvents)].load(
                std::memory_order_acquire);
        if (chunk == nullptr) break;  // unpublished tail
        refs.push_back(Ref{&chunk[i % kChunkEvents], buffer->tid});
      }
    }
  }
  std::stable_sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    return a.event->ts_nanos < b.event->ts_nanos;
  });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  // Lane names: tid 0 is the thread that first recorded (normally the
  // statement thread); later tids are scheduler workers / other threads.
  for (uint32_t tid = 0; tid <= max_tid && !refs.empty(); ++tid) {
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"" +
           (tid == 0 ? std::string("statement") :
                       "worker-" + std::to_string(tid)) +
           "\"}}";
  }
  char buf[64];
  for (const Ref& ref : refs) {
    const TraceEvent& e = *ref.event;
    comma();
    out += "{\"name\":";
    json::AppendEscaped(&out, e.name);
    out += ",\"cat\":\"";
    out += TraceCategoryName(e.category);
    out += "\",\"ph\":\"";
    out += e.kind == TraceEvent::Kind::kComplete ? 'X' : 'i';
    out += '"';
    if (e.kind == TraceEvent::Kind::kInstant) out += ",\"s\":\"t\"";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%lld.%03lld",
                  static_cast<long long>(e.ts_nanos / 1000),
                  static_cast<long long>(e.ts_nanos % 1000));
    out += buf;
    if (e.kind == TraceEvent::Kind::kComplete) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%lld.%03lld",
                    static_cast<long long>(e.dur_nanos / 1000),
                    static_cast<long long>(e.dur_nanos % 1000));
      out += buf;
    }
    out += ",\"pid\":1,\"tid\":" + std::to_string(ref.tid);
    bool has_parent = e.detail[0] != '\0';
    if (e.arg_name != nullptr || has_parent) {
      out += ",\"args\":{";
      if (e.arg_name != nullptr) {
        out += '"';
        out += e.arg_name;
        out += "\":" + std::to_string(e.arg);
        if (has_parent) out += ',';
      }
      if (has_parent) {
        out += "\"parent\":";
        json::AppendEscaped(&out, e.detail);
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":" +
         std::to_string(dropped) + "}}";
  return out;
}

Status TraceRecorder::ExportChromeTrace(const std::string& path) const {
  std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::IOError("short write to trace output " + path);
  }
  return Status::OK();
}

uint64_t TraceRecorder::EventCount() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->published.load(std::memory_order_acquire);
  }
  return total;
}

uint64_t TraceRecorder::DroppedCount() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void TraceRecorder::Reset() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  // Buffers may be cached in other threads' TLS: keep the objects, drop the
  // contents. The caller guarantees quiescence.
  for (auto& buffer : buffers_) {
    buffer->published.store(0, std::memory_order_relaxed);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

void TraceRecorder::SetThreadCapacity(size_t events) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  thread_capacity_ = std::max<size_t>(events, kChunkEvents);
}

}  // namespace obs
}  // namespace bulkdel

#ifndef BULKDEL_OBS_TRACE_RECORDER_H_
#define BULKDEL_OBS_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/status.h"

namespace bulkdel {
namespace obs {

/// Event taxonomy. Categories map to the `cat` field of the exported Chrome
/// trace events, so Perfetto can filter lanes by subsystem. Keep in sync
/// with TraceCategoryName()/KnownTraceCategories().
enum class TraceCategory : uint8_t {
  kPhase,       ///< executor phases (one span per PhaseScope)
  kSched,       ///< phase-DAG scheduler dispatch
  kPool,        ///< buffer pool fetch/evict/flush
  kReadahead,   ///< read-ahead issue / consume
  kDisk,        ///< disk manager write runs
  kWal,         ///< log append/sync
  kCheckpoint,  ///< phase-end checkpoints
  kLatch,       ///< latch acquisition waits
};
inline constexpr int kNumTraceCategories = 8;

const char* TraceCategoryName(TraceCategory category);
const std::vector<const char*>& KnownTraceCategories();

/// One recorded event. Fixed-size so ring slots never allocate: the name is
/// truncation-copied inline, the optional argument key and parent label are
/// static strings / small inline copies.
struct TraceEvent {
  enum class Kind : uint8_t { kComplete, kInstant };

  static constexpr size_t kNameCapacity = 48;
  static constexpr size_t kDetailCapacity = 32;

  int64_t ts_nanos = 0;   ///< MonotonicNanos() at event start
  int64_t dur_nanos = 0;  ///< kComplete only
  int64_t arg = 0;        ///< numeric payload, exported when arg_name != null
  const char* arg_name = nullptr;  ///< static string or null
  Kind kind = Kind::kInstant;
  TraceCategory category = TraceCategory::kPhase;
  char name[kNameCapacity] = {};
  /// Free-form secondary label; phase spans carry their upstream phase here
  /// (exported as args.parent, the edge bulkdel_tracecat walks for the
  /// critical path).
  char detail[kDetailCapacity] = {};
};

/// Low-overhead in-memory trace sink: per-thread rings written lock-free by
/// their owning thread, exported as Chrome trace-event JSON ("one lane per
/// worker thread" in Perfetto / chrome://tracing).
///
/// Design constraints, in order:
///  * disabled cost ~ one relaxed atomic load per instrumentation site (the
///    recorder is always present; `enabled_` gates recording);
///  * enabled recording takes no lock and never blocks: each thread owns a
///    ring of fixed-size chunks, appended with a release-store cursor. When
///    a ring is full, *new* events are dropped (and counted) rather than
///    overwriting old ones — so every slot below the cursor is immutable,
///    and an exporter that acquire-loads the cursor may read concurrently
///    with recording without a data race;
///  * recording never performs I/O and never touches the DiskManager, so
///    simulated per-phase I/O is bit-identical with tracing on or off (the
///    PR 3 identity invariant; asserted by obs_test).
///
/// Timestamps come from util/clock.h's MonotonicNanos — the same source as
/// Stopwatch — so span times align with bench wall timings.
///
/// One recorder serves the whole process (Global()): worker threads spawned
/// by any statement land in the same trace, and a bench's --perfetto-out
/// exports every run of the process into one file.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Records a complete span [begin, end). No-op while disabled.
  void RecordComplete(TraceCategory category, std::string_view name,
                      int64_t begin_nanos, int64_t end_nanos,
                      const char* arg_name = nullptr, int64_t arg = 0,
                      std::string_view parent = {});

  /// Records a point event at now(). No-op while disabled.
  void RecordInstant(TraceCategory category, std::string_view name,
                     const char* arg_name = nullptr, int64_t arg = 0);

  /// The whole trace as one Chrome trace-event JSON object
  /// ({"traceEvents":[...]}), events sorted by timestamp, with thread_name
  /// metadata naming each lane. Safe to call while other threads record
  /// (their not-yet-published tail is simply absent).
  std::string ToChromeTraceJson() const;

  /// ToChromeTraceJson() written to `path` (truncating).
  Status ExportChromeTrace(const std::string& path) const;

  /// Events currently published across all threads / dropped for capacity.
  uint64_t EventCount() const;
  uint64_t DroppedCount() const;

  /// Discards all recorded events and resets drop counters. Caller must
  /// ensure no thread is concurrently recording (test/bench setup only).
  void Reset();

  /// Per-thread ring capacity in events, applied to threads that register
  /// after the call. Test seam; the default (kDefaultCapacity) holds a full
  /// reduced-scale bench run.
  void SetThreadCapacity(size_t events);

  static constexpr size_t kChunkEvents = 4096;
  static constexpr size_t kDefaultCapacity = 1u << 16;

 private:
  /// Single-producer ring: the owning thread appends, anyone may read the
  /// published prefix. Chunks are allocated on demand (release-stored into a
  /// fixed pointer table) so an idle thread costs ~nothing and a reader
  /// never sees a reallocation.
  struct ThreadBuffer {
    explicit ThreadBuffer(uint32_t tid_in, size_t capacity_in)
        : tid(tid_in),
          capacity(capacity_in),
          chunks((capacity_in + kChunkEvents - 1) / kChunkEvents) {}

    const uint32_t tid;
    const size_t capacity;
    std::atomic<uint64_t> published{0};  ///< events visible to readers
    std::atomic<uint64_t> dropped{0};
    std::vector<std::atomic<TraceEvent*>> chunks;
    std::vector<std::unique_ptr<TraceEvent[]>> owned;  ///< under registry mu
  };

  ThreadBuffer* BufferForThisThread();
  TraceEvent* SlotForWrite(ThreadBuffer* buffer);

  std::atomic<bool> enabled_{false};
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  size_t thread_capacity_ = kDefaultCapacity;
};

/// RAII complete-span helper: captures begin on construction when the
/// recorder is enabled, records on destruction. Cheap no-op when disabled.
class TraceSpan {
 public:
  TraceSpan(TraceCategory category, std::string_view name,
            const char* arg_name = nullptr)
      : category_(category), name_(name), arg_name_(arg_name) {
    if (TraceRecorder::Global().enabled()) begin_nanos_ = MonotonicNanos();
  }
  ~TraceSpan() {
    if (begin_nanos_ == 0) return;
    TraceRecorder::Global().RecordComplete(category_, name_, begin_nanos_,
                                           MonotonicNanos(), arg_name_, arg_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return begin_nanos_ != 0; }
  void set_arg(int64_t arg) { arg_ = arg; }

 private:
  TraceCategory category_;
  std::string_view name_;
  const char* arg_name_;
  int64_t arg_ = 0;
  int64_t begin_nanos_ = 0;
};

}  // namespace obs
}  // namespace bulkdel

#endif  // BULKDEL_OBS_TRACE_RECORDER_H_

#include "obs/statement_registry.h"

#include "util/clock.h"

namespace bulkdel {
namespace obs {

namespace {
thread_local uint64_t tls_current_statement = 0;
}  // namespace

StatementRegistry& StatementRegistry::Global() {
  static StatementRegistry* registry = new StatementRegistry();
  return *registry;
}

uint64_t StatementRegistry::CurrentThreadStatement() {
  return tls_current_statement;
}

uint64_t StatementRegistry::RegisterSession(const std::string& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_session_id_++;
  SessionState& state = sessions_[id];
  state.peer = peer;
  state.begin_nanos = MonotonicNanos();
  return id;
}

void StatementRegistry::UnregisterSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
}

uint64_t StatementRegistry::BeginStatement(uint64_t session_id,
                                           const std::string& text,
                                           MetricsRegistry* metrics) {
  // Snapshot outside our mutex: MetricsRegistry has its own lock and the
  // scrape path (Statements()) nests ours -> theirs, never the reverse.
  MetricsSnapshot begin;
  if (metrics != nullptr) begin = metrics->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_statement_id_++;
  ++statements_begun_;
  StatementState& state = inflight_[id];
  state.session_id = session_id;
  state.text = text.substr(0, kStatementTextCap);
  state.begin_nanos = MonotonicNanos();
  state.metrics = metrics;
  state.begin_metrics = std::move(begin);
  auto session = sessions_.find(session_id);
  if (session != sessions_.end()) session->second.inflight_statement = id;
  return id;
}

void StatementRegistry::SetPhase(uint64_t statement_id,
                                 const std::string& phase) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inflight_.find(statement_id);
  if (it != inflight_.end()) it->second.phase = phase;
}

void StatementRegistry::EndStatement(uint64_t statement_id, bool ok,
                                     uint64_t rows) {
  // Final delta snapshotted outside our mutex (see BeginStatement). The
  // registry pointer stays valid between the two critical sections: the
  // statement is still running, so its Database is alive.
  MetricsRegistry* metrics = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(statement_id);
    if (it == inflight_.end()) return;
    metrics = it->second.metrics;
  }
  MetricsSnapshot end;
  if (metrics != nullptr) end = metrics->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inflight_.find(statement_id);
  if (it == inflight_.end()) return;
  StatementState& state = it->second;
  StatementRow row;
  row.id = statement_id;
  row.session_id = state.session_id;
  row.finished = true;
  row.ok = ok;
  row.phase = std::move(state.phase);
  row.elapsed_nanos = MonotonicNanos() - state.begin_nanos;
  row.rows = rows;
  row.statement = std::move(state.text);
  if (metrics != nullptr) row.delta = end - state.begin_metrics;
  auto session = sessions_.find(state.session_id);
  if (session != sessions_.end()) {
    ++session->second.statements;
    if (session->second.inflight_statement == statement_id) {
      session->second.inflight_statement = 0;
    }
  }
  inflight_.erase(it);
  recent_.push_front(std::move(row));
  while (recent_.size() > kRecentStatements) recent_.pop_back();
}

std::vector<StatementRow> StatementRegistry::Statements() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = MonotonicNanos();
  std::vector<StatementRow> rows;
  rows.reserve(inflight_.size() + recent_.size());
  for (const auto& [id, state] : inflight_) {
    StatementRow row;
    row.id = id;
    row.session_id = state.session_id;
    row.finished = false;
    row.phase = state.phase;
    row.elapsed_nanos = now - state.begin_nanos;
    row.statement = state.text;
    if (state.metrics != nullptr) {
      row.delta = state.metrics->Snapshot() - state.begin_metrics;
    }
    rows.push_back(std::move(row));
  }
  for (const StatementRow& finished : recent_) rows.push_back(finished);
  return rows;
}

std::vector<SessionRow> StatementRegistry::Sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = MonotonicNanos();
  std::vector<SessionRow> rows;
  rows.reserve(sessions_.size());
  for (const auto& [id, state] : sessions_) {
    SessionRow row;
    row.id = id;
    row.peer = state.peer;
    row.elapsed_nanos = now - state.begin_nanos;
    row.statements = state.statements;
    row.inflight_statement = state.inflight_statement;
    rows.push_back(std::move(row));
  }
  return rows;
}

int64_t StatementRegistry::sessions_active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(sessions_.size());
}

int64_t StatementRegistry::statements_inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(inflight_.size());
}

int64_t StatementRegistry::statements_begun() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(statements_begun_);
}

void StatementRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.clear();
  inflight_.clear();
  recent_.clear();
  next_session_id_ = 1;
  next_statement_id_ = 1;
  statements_begun_ = 0;
}

StatementScope::StatementScope(uint64_t session_id, const std::string& text,
                               MetricsRegistry* metrics)
    : id_(StatementRegistry::Global().BeginStatement(session_id, text,
                                                     metrics)),
      saved_thread_statement_(tls_current_statement),
      begin_nanos_(MonotonicNanos()) {
  tls_current_statement = id_;
}

StatementScope::~StatementScope() {
  tls_current_statement = saved_thread_statement_;
  StatementRegistry::Global().EndStatement(id_, ok_, rows_);
}

int64_t StatementScope::ElapsedNanos() const {
  return MonotonicNanos() - begin_nanos_;
}

}  // namespace obs
}  // namespace bulkdel

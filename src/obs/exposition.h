#ifndef BULKDEL_OBS_EXPOSITION_H_
#define BULKDEL_OBS_EXPOSITION_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace bulkdel {
namespace obs {

/// `name` as a Prometheus metric name: "bulkdel_" prefix, every character
/// outside [a-zA-Z0-9_] replaced with '_' ("bp.fetch_ns" ->
/// "bulkdel_bp_fetch_ns").
std::string PrometheusMetricName(const std::string& name);

/// Renders `snap` in the Prometheus text exposition format (version 0.0.4):
/// one `# TYPE` line per metric (kind from KnownMetrics(); dynamically
/// registered names export untyped), scalar samples for counters/gauges, and
/// cumulative `_bucket{le="..."}` series plus `_sum`/`_count` for the log2
/// histograms — `le` values are the buckets' inclusive upper bounds
/// (2^b - 1), ending with `+Inf`.
///
/// `extra_gauges` appends process-level series that live outside the
/// registry (statement/session counts from the StatementRegistry); names go
/// through the same sanitizer.
std::string PrometheusText(
    const MetricsSnapshot& snap,
    const std::vector<std::pair<std::string, int64_t>>& extra_gauges = {});

}  // namespace obs
}  // namespace bulkdel

#endif  // BULKDEL_OBS_EXPOSITION_H_

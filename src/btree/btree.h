#ifndef BULKDEL_BTREE_BTREE_H_
#define BULKDEL_BTREE_BTREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "btree/btree_node.h"
#include "storage/buffer_pool.h"
#include "table/rid.h"
#include "util/relaxed_atomic.h"
#include "util/result.h"
#include "util/status.h"

namespace bulkdel {

/// Per-index options.
struct IndexOptions {
  /// Reject duplicate keys on insert. Unique indices are processed first by
  /// the vertical executor and brought back on-line at commit (§3.1).
  bool unique = false;

  /// Cap on entries per leaf / inner node; 0 means "whatever fits the page".
  /// The paper's Experiment 3 manufactures a height-4 index by artificially
  /// storing only 100 keys per inner node; these fields reproduce that.
  uint16_t max_leaf_entries = 0;
  uint16_t max_inner_entries = 0;

  /// Vertical processing order hint (§3.1.3): "indices which are critical
  /// for the performance of applications can be processed first while the
  /// processing of non-critical indices can be delayed". Higher = earlier,
  /// within the same uniqueness class (unique indices always come first).
  int16_t priority = 0;
};

/// Post-deletion reorganization policy for bulk deletes (§2.3).
enum class ReorgMode {
  /// Reclaim a page only when it becomes completely empty (Johnson & Shasha's
  /// "free-at-empty" [9]); the paper's experimental setting.
  kFreeAtEmpty,
  /// After the leaf pass: compact the leaf level (shift entries left across
  /// leaves), free the emptied tail, and rebuild all inner levels from the
  /// leaf chain ("process each layer individually", §2.3).
  kCompactAndRebuild,
  /// Incremental base-node scheme adapted from Zou & Salzberg [26]: compact
  /// one level-1 subtree at a time, updating its inner node in place.
  kIncrementalBaseNode,
};

/// Counters reported by the bulk-delete primitives.
struct BtreeBulkDeleteStats {
  uint64_t entries_deleted = 0;
  uint64_t leaves_visited = 0;
  uint64_t leaves_freed = 0;
  /// Leaves freed by the range leaf-run pass *without* per-entry removal
  /// (fully covered by [lo, hi]); also counted in leaves_freed.
  uint64_t leaves_dropped = 0;
  uint64_t skipped_undeletable = 0;
};

/// B-link tree (B⁺-tree with sibling chains on every level [10]) mapping
/// int64 keys to RIDs. All (key, RID) entries live in the leaves; inner nodes
/// hold composite separators only. Supports:
///
///  * record-at-a-time insert/delete (Jannink-style delete [7] with
///    free-at-empty page reclamation [9]) — the *traditional* path,
///  * leaf-level sequential scans via the sibling chain,
///  * bulk load from a sorted entry stream (for drop & create),
///  * the paper's leaf-level bulk-delete primitives: merge with a sorted
///    key/entry list, and predicate probing (hash/partitioned plans), with
///    pluggable reorganization (§2.3).
///
/// Thread model: structural operations are single-writer; the txn layer
/// serializes writers with an index latch and uses per-entry "undeletable"
/// flags for the direct-propagation protocol (§3.1.2).
class BTree {
 public:
  /// Creates an empty tree; allocates a meta page and an empty root leaf.
  static Result<BTree> Create(BufferPool* pool, IndexOptions options = {});
  /// Opens an existing tree rooted at `meta_page`.
  static Result<BTree> Open(BufferPool* pool, PageId meta_page,
                            IndexOptions options = {});

  BTree(BTree&&) = default;
  BTree& operator=(BTree&&) = default;

  PageId meta_page() const { return meta_page_; }
  PageId root() const { return root_; }
  int height() const { return height_; }
  uint64_t entry_count() const { return entry_count_; }
  uint32_t num_leaves() const { return num_leaves_; }
  uint32_t num_inner_nodes() const { return num_inner_; }
  const IndexOptions& options() const { return options_; }

  uint16_t leaf_capacity() const;
  uint16_t inner_capacity() const;

  /// Inserts (key, rid). `flags` may carry kEntryUndeletable. Fails with
  /// AlreadyExists on duplicate key for unique indices, or on an exactly
  /// duplicated (key, rid) pair otherwise.
  Status Insert(int64_t key, const Rid& rid, uint16_t flags = 0);

  /// Traditional root-to-leaf delete of the exact entry (key, rid).
  Status Delete(int64_t key, const Rid& rid);

  /// Deletes the first entry with `key`; returns its RID via `deleted_rid`.
  Status DeleteKey(int64_t key, Rid* deleted_rid = nullptr);

  /// All RIDs indexed under `key` (crosses leaf boundaries).
  Result<std::vector<Rid>> Search(int64_t key);

  /// Visits entries with lo <= key <= hi in order.
  Status RangeScan(int64_t lo, int64_t hi,
                   const std::function<Status(int64_t, const Rid&)>& visitor);

  /// Sequential scan of the whole leaf level.
  Status ScanAll(
      const std::function<Status(int64_t, const Rid&, uint16_t)>& visitor);

  /// Replaces the tree contents with `entries` (must be (key,rid)-sorted and
  /// duplicate-free as composites). `fill` in (0,1] controls node fill.
  Status BulkLoad(const std::vector<KeyRid>& entries, double fill = 1.0);

  /// Set-oriented bulk insert of sorted, composite-unique entries — the dual
  /// of the bulk delete, needed by bulk UPDATE (§1: a bulk update is a bulk
  /// delete plus a bulk insert on the affected index). Large batches merge
  /// the existing leaf level with the new entries and rebuild (one
  /// sequential pass); small batches fall back to ordered point inserts,
  /// which keep the descent path hot. Fails with AlreadyExists (tree
  /// unchanged) on duplicate keys for unique indices or duplicate composites.
  Status BulkInsertSorted(const std::vector<KeyRid>& entries);

  /// Merge-based bulk delete: removes every entry whose key appears in
  /// `keys` (ascending, unique). Deleted RIDs are appended to `deleted_rids`
  /// (in key order) when non-null; `on_delete` additionally sees every
  /// removed (key, RID) — the recovery layer logs them as WAL records.
  /// This is the ⋉̸-by-key operator.
  Status BulkDeleteSortedKeys(
      const std::vector<int64_t>& keys, ReorgMode reorg,
      std::vector<Rid>* deleted_rids, BtreeBulkDeleteStats* stats = nullptr,
      const std::function<void(int64_t, const Rid&)>& on_delete = nullptr);

  /// Merge-based bulk delete of exact composite entries (ascending, unique).
  Status BulkDeleteSortedEntries(const std::vector<KeyRid>& entries,
                                 ReorgMode reorg,
                                 BtreeBulkDeleteStats* stats = nullptr);

  /// Probe-based bulk delete: one pass over the leaf range [lo, hi] (or the
  /// whole level when unbounded), removing entries for which `pred` returns
  /// true. This is the ⋉̸-by-RID operator (classic-hash and partitioned
  /// plans).
  Status BulkDeleteByPredicate(
      const std::function<bool(int64_t, const Rid&)>& pred, ReorgMode reorg,
      BtreeBulkDeleteStats* stats = nullptr,
      std::optional<int64_t> lo = std::nullopt,
      std::optional<int64_t> hi = std::nullopt,
      const std::function<void(int64_t, const Rid&)>& on_delete = nullptr);

  /// Range bulk delete with the leaf-run fast path: removes every entry with
  /// lo <= key <= hi. Leaves *fully* covered by the range (and free of
  /// kEntryUndeletable markers) are unlinked and freed whole — their entries
  /// are never touched individually and the pages are never written: each
  /// contiguous run of dropped leaves is spliced out of the sibling chain
  /// with two boundary-neighbor writes, so the pass charges one read per
  /// dropped leaf (to harvest its RIDs) plus parent maintenance; only the
  /// two boundary leaves see per-entry removal. Deleted RIDs are appended to `deleted_rids` in key
  /// order when non-null. `on_leaf_drop` fires once per dropped leaf *before*
  /// it is detached, with the leaf's page id and its full entry list (the
  /// recovery layer logs one kRangeLeafRun record); returning an error
  /// aborts the pass with the leaf intact. `on_delete` sees each
  /// individually removed boundary entry (logged as kEntryDeleted). An
  /// inverted range (lo > hi) deletes nothing.
  ///
  /// With `dropped_pages` non-null, no page is returned to the allocator
  /// during the pass: every node the pass empties (dropped leaves, collapsed
  /// inner nodes) is unlinked and detached but its page id is pushed onto
  /// `dropped_pages` for the caller to free later. Range deletes free whole
  /// subchains, and an immediate free lets a concurrent list spill reuse the
  /// page while stale on-disk siblings/parents still point at it — after a
  /// crash, recovery's re-traversal would then walk into arbitrary bytes.
  /// The bulk-delete executor frees the collected pages only once the
  /// statement's End record is durable.
  Status BulkDeleteRange(
      int64_t lo, int64_t hi, ReorgMode reorg,
      std::vector<Rid>* deleted_rids, BtreeBulkDeleteStats* stats = nullptr,
      const std::function<Status(PageId, const std::vector<KeyRid>&)>&
          on_leaf_drop = nullptr,
      const std::function<void(int64_t, const Rid&)>& on_delete = nullptr,
      std::vector<PageId>* dropped_pages = nullptr);

  /// Read-only merge lookup: one leaf-level pass visiting every entry whose
  /// key appears in `keys` (ascending). The set-oriented analogue of probing
  /// the index per key — used to check referential integrity constraints
  /// vertically, before any deletion happens (§2.1).
  Status MergeLookupSortedKeys(
      const std::vector<int64_t>& keys,
      const std::function<Status(int64_t, const Rid&)>& visitor);

  /// Number of entries whose key appears in `keys` (ascending).
  Result<uint64_t> CountMatchingSortedKeys(const std::vector<int64_t>& keys);

  /// Clears every kEntryUndeletable flag (index goes back on-line, §3.1.2).
  Status ClearUndeletableFlags();

  /// Persists meta (root, height, counts).
  Status FlushMeta();

  /// Re-derives entry/node counts by walking every level's sibling chain and
  /// persists them. Used after crash recovery, when the cached meta counters
  /// may predate the interrupted bulk delete.
  Status RecountFromScan();

  /// Frees every page of the tree including the meta page.
  Status Drop();

  /// Exhaustively validates structural invariants: composite ordering inside
  /// nodes, separator bounds, uniform leaf depth, consistent sibling chains
  /// on every level, and count bookkeeping. Test/debug support.
  Status CheckInvariants();

  /// Collects the leaf chain page-ids left to right (test support).
  Result<std::vector<PageId>> LeafChain();

 private:
  BTree(BufferPool* pool, PageId meta_page, IndexOptions options)
      : pool_(pool), meta_page_(meta_page), options_(options) {}

  struct Split {
    KeyRid sep;
    PageId right;
  };

  Status LoadMeta();
  Result<PageId> NewNode(uint8_t level);
  Status FreeNode(PageId page);

  /// Root-to-leaf descent by composite probe; returns the leaf page id.
  Result<PageId> DescendToLeaf(const KeyRid& probe);

  Result<std::optional<Split>> InsertRec(PageId node_page, int64_t key,
                                         const Rid& rid, uint16_t flags);
  Status SplitLeaf(PageGuard& leaf_guard, Split* split);
  Status SplitInner(PageGuard& inner_guard, Split* split);

  /// Removes `child` from its parent at `parent_level`, locating the parent
  /// by descending with `probe` (the child's pre-deletion smallest entry) and
  /// walking the parent level's sibling chain. Cascades upward when a parent
  /// becomes childless; collapses the root when it degenerates.
  Status RemoveChildAtLevel(uint8_t parent_level, PageId child,
                            const KeyRid& probe);

  /// Detaches `node` from its level's sibling chain.
  Status UnlinkFromChain(PageId node);

  /// Collapses a keyless inner root chain: while the root is inner with a
  /// single child, promote the child.
  Status MaybeCollapseRoot();

  /// Shared leaf-pass driver for the bulk-delete entry points.
  /// `matcher(node, index)` classifies the entry at `index`:
  /// returns +1 = delete it, 0 = keep and move on, -1 = no further matches in
  /// this pass (stop). The driver handles undeletable flags, empty-leaf
  /// bookkeeping and reorganization.
  struct EmptyLeaf {
    PageId page;
    KeyRid probe;  // smallest entry before the pass touched the leaf
  };
  Status FinishBulkDelete(std::vector<EmptyLeaf> empties, ReorgMode reorg,
                          BtreeBulkDeleteStats* stats);
  /// BulkDeleteRange body; runs with `deferred_frees_` installed.
  Status BulkDeleteRangeLocked(
      int64_t lo, int64_t hi, ReorgMode reorg, std::vector<Rid>* deleted_rids,
      BtreeBulkDeleteStats* stats,
      const std::function<Status(PageId, const std::vector<KeyRid>&)>&
          on_leaf_drop,
      const std::function<void(int64_t, const Rid&)>& on_delete);

  // Reorganization routines (defined in reorg.cc).
  Status CompactAndRebuild();
  Status IncrementalBaseNodeReorg();
  /// Rebuilds all inner levels from the current (non-empty) leaf chain.
  Status RebuildInnerLevels();
  /// Builds inner levels over `children` (pairs of max-composite and page),
  /// freeing nothing; sets root_/height_/num_inner_.
  Status BuildUpperLevels(std::vector<std::pair<KeyRid, PageId>> children,
                          double fill);
  /// Frees every inner node (keeps leaves).
  Status FreeInnerLevels();

  BufferPool* pool_;
  PageId meta_page_;
  IndexOptions options_;
  /// When non-null, FreeNode defers: it pushes the page here instead of
  /// returning it to the allocator. Scoped to BulkDeleteRange (see its doc).
  std::vector<PageId>* deferred_frees_ = nullptr;
  PageId root_ = kInvalidPageId;
  // Relaxed atomics: read by the planner while updaters insert/delete.
  RelaxedAtomic<int> height_ = 1;
  RelaxedAtomic<uint64_t> entry_count_ = 0;
  RelaxedAtomic<uint32_t> num_leaves_ = 0;
  RelaxedAtomic<uint32_t> num_inner_ = 0;
};

}  // namespace bulkdel

#endif  // BULKDEL_BTREE_BTREE_H_

#include "btree/btree_node.h"

#include <cstring>

namespace bulkdel {

void BTreeNode::Init(uint8_t level) {
  std::memset(data_, 0, kPageSize);
  data_[0] = static_cast<char>(level);
  set_count(0);
  set_right_sibling(kInvalidPageId);
  set_left_sibling(kInvalidPageId);
}

void BTreeNode::SetLeafEntry(uint16_t i, int64_t key, const Rid& rid,
                             uint16_t flags) {
  char* e = LeafEntry(i);
  StoreI64(e, key);
  StoreU32(e + 8, rid.page);
  StoreU16(e + 12, rid.slot);
  StoreU16(e + 14, flags);
}

void BTreeNode::LeafInsertAt(uint16_t i, int64_t key, const Rid& rid,
                             uint16_t flags) {
  uint16_t n = count();
  if (i < n) {
    std::memmove(LeafEntry(i + 1), LeafEntry(i),
                 static_cast<size_t>(n - i) * kLeafEntrySize);
  }
  SetLeafEntry(i, key, rid, flags);
  set_count(n + 1);
}

void BTreeNode::LeafRemoveAt(uint16_t i) { LeafRemoveRange(i, i + 1); }

void BTreeNode::LeafRemoveRange(uint16_t from, uint16_t to) {
  uint16_t n = count();
  if (to < n) {
    std::memmove(LeafEntry(from), LeafEntry(to),
                 static_cast<size_t>(n - to) * kLeafEntrySize);
  }
  set_count(n - (to - from));
}

uint16_t BTreeNode::LeafLowerBound(int64_t key) const {
  uint16_t lo = 0, hi = count();
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (LeafKey(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint16_t BTreeNode::LeafLowerBound(const KeyRid& probe) const {
  uint16_t lo = 0, hi = count();
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (LeafEntryAt(mid) < probe) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PageId BTreeNode::Child(uint16_t i) const {
  if (i == 0) return LoadU32(data_ + kHeaderSize);
  return LoadU32(InnerEntry(i - 1) + 16);
}

void BTreeNode::SetChild(uint16_t i, PageId p) {
  if (i == 0) {
    StoreU32(data_ + kHeaderSize, p);
  } else {
    StoreU32(InnerEntry(i - 1) + 16, p);
  }
}

void BTreeNode::SetInnerSep(uint16_t i, const KeyRid& sep) {
  char* e = InnerEntry(i);
  StoreI64(e, sep.key);
  StoreU32(e + 8, sep.rid.page);
  StoreU16(e + 12, sep.rid.slot);
  StoreU16(e + 14, 0);
}

void BTreeNode::InnerInsertAt(uint16_t i, const KeyRid& sep,
                              PageId right_child) {
  uint16_t n = count();
  if (i < n) {
    std::memmove(InnerEntry(i + 1), InnerEntry(i),
                 static_cast<size_t>(n - i) * kInnerEntrySize);
  }
  SetInnerSep(i, sep);
  StoreU32(InnerEntry(i) + 16, right_child);
  set_count(n + 1);
}

void BTreeNode::InnerRemoveAt(uint16_t i) {
  uint16_t n = count();
  if (i + 1 < n) {
    std::memmove(InnerEntry(i), InnerEntry(i + 1),
                 static_cast<size_t>(n - i - 1) * kInnerEntrySize);
  }
  set_count(n - 1);
}

void BTreeNode::InnerRemoveChild0() {
  uint16_t n = count();
  // child1 (stored in entry 0) becomes child0; entry 0 disappears.
  SetChild(0, Child(1));
  if (n > 1) {
    std::memmove(InnerEntry(0), InnerEntry(1),
                 static_cast<size_t>(n - 1) * kInnerEntrySize);
  }
  set_count(n - 1);
}

uint16_t BTreeNode::ChildIndexFor(const KeyRid& probe) const {
  // Child i covers (sep[i-1], sep[i]]: descend into the first child whose
  // upper separator is >= probe.
  uint16_t lo = 0, hi = count();
  while (lo < hi) {
    uint16_t mid = (lo + hi) / 2;
    if (InnerSep(mid) < probe) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BTreeNode::FindChild(PageId child) const {
  uint16_t n = count();
  for (uint16_t i = 0; i <= n; ++i) {
    if (Child(i) == child) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace bulkdel

#include "btree/btree.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace bulkdel {

namespace {
constexpr uint32_t kMagicOff = 0;
constexpr uint32_t kRootOff = 4;
constexpr uint32_t kHeightOff = 8;
constexpr uint32_t kCountOff = 12;
constexpr uint32_t kLeavesOff = 20;
constexpr uint32_t kInnerOff = 24;
constexpr uint32_t kBtreeMagic = 0x42545231;  // "BTR1"

constexpr int64_t kMinKey = std::numeric_limits<int64_t>::min();

PageId SiblingOf(const char* data) {
  return BTreeNode(const_cast<char*>(data)).right_sibling();
}

/// Announces the upcoming leaf chain to the buffer pool as a leaf pass walks
/// it. The pool fetches those pages in chain order under the calling phase's
/// IoAttribution, so the charged I/O is exactly what the demand fetches would
/// have produced (see docs/BUFFERPOOL.md) — the walk merely stops missing.
/// A countdown tracks how far ahead the last announcement reached so each
/// leaf is prefetched at most once per pass.
class LeafPrefetcher {
 public:
  explicit LeafPrefetcher(BufferPool* pool)
      : pool_(pool), window_(pool->readahead_pages()) {}

  void Announce(PageId next) {
    if (window_ == 0 || next == kInvalidPageId) return;
    if (countdown_ > 0) {
      --countdown_;
      return;
    }
    size_t covered = pool_->PrefetchChain(next, window_, &SiblingOf);
    // Zero coverage means the pool could not place even one page without a
    // dirty eviction; back off a full window before asking again.
    countdown_ = covered > 0 ? covered : window_;
  }

 private:
  BufferPool* pool_;
  size_t window_;
  size_t countdown_ = 0;
};
}  // namespace

uint16_t BTree::leaf_capacity() const {
  uint16_t cap = BTreeNode::LeafPageCapacity();
  if (options_.max_leaf_entries > 0 && options_.max_leaf_entries < cap) {
    cap = options_.max_leaf_entries;
  }
  return cap;
}

uint16_t BTree::inner_capacity() const {
  uint16_t cap = BTreeNode::InnerPageCapacity();
  if (options_.max_inner_entries > 0 && options_.max_inner_entries < cap) {
    cap = options_.max_inner_entries;
  }
  return cap;
}

Result<BTree> BTree::Create(BufferPool* pool, IndexOptions options) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool->NewPage());
  BTree tree(pool, meta.page_id(), options);
  BULKDEL_ASSIGN_OR_RETURN(PageId root, tree.NewNode(0));
  tree.root_ = root;
  tree.height_ = 1;
  StoreU32(meta.data() + kMagicOff, kBtreeMagic);
  meta.MarkDirty();
  meta.Release();
  BULKDEL_RETURN_IF_ERROR(tree.FlushMeta());
  return tree;
}

Result<BTree> BTree::Open(BufferPool* pool, PageId meta_page,
                          IndexOptions options) {
  BTree tree(pool, meta_page, options);
  BULKDEL_RETURN_IF_ERROR(tree.LoadMeta());
  return tree;
}

Status BTree::LoadMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  if (LoadU32(meta.data() + kMagicOff) != kBtreeMagic) {
    return Status::Corruption("bad btree meta magic on page " +
                              std::to_string(meta_page_));
  }
  root_ = LoadU32(meta.data() + kRootOff);
  height_ = static_cast<int>(LoadU32(meta.data() + kHeightOff));
  entry_count_ = LoadU64(meta.data() + kCountOff);
  num_leaves_ = LoadU32(meta.data() + kLeavesOff);
  num_inner_ = LoadU32(meta.data() + kInnerOff);
  return Status::OK();
}

Status BTree::FlushMeta() {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard meta, pool_->FetchPage(meta_page_));
  StoreU32(meta.data() + kMagicOff, kBtreeMagic);
  StoreU32(meta.data() + kRootOff, root_);
  StoreU32(meta.data() + kHeightOff, static_cast<uint32_t>(height_));
  StoreU64(meta.data() + kCountOff, entry_count_);
  StoreU32(meta.data() + kLeavesOff, num_leaves_);
  StoreU32(meta.data() + kInnerOff, num_inner_);
  meta.MarkDirty();
  return Status::OK();
}

Result<PageId> BTree::NewNode(uint8_t level) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
  BTreeNode node(page.data());
  node.Init(level);
  page.MarkDirty();
  if (level == 0) {
    ++num_leaves_;
  } else {
    ++num_inner_;
  }
  return page.page_id();
}

Status BTree::FreeNode(PageId page) {
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
    BTreeNode node(guard.data());
    if (node.is_leaf()) {
      --num_leaves_;
    } else {
      --num_inner_;
    }
  }
  if (deferred_frees_ != nullptr) {
    // Deferred reclamation (see BulkDeleteRange): the page stays allocated —
    // and any cached frame stays valid — until the caller frees it after the
    // statement's End record is durable.
    deferred_frees_->push_back(page);
    return Status::OK();
  }
  return pool_->DeletePage(page);
}

Result<PageId> BTree::DescendToLeaf(const KeyRid& probe) {
  PageId cur = root_;
  while (true) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
    BTreeNode node(guard.data());
    if (node.is_leaf()) return cur;
    cur = node.Child(node.ChildIndexFor(probe));
  }
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Status BTree::Insert(int64_t key, const Rid& rid, uint16_t flags) {
  BULKDEL_ASSIGN_OR_RETURN(std::optional<Split> split,
                           InsertRec(root_, key, rid, flags));
  if (split.has_value()) {
    // Grow the tree: new root above the old one.
    uint8_t old_level;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard old_root, pool_->FetchPage(root_));
      old_level = BTreeNode(old_root.data()).level();
    }
    BULKDEL_ASSIGN_OR_RETURN(PageId new_root,
                             NewNode(static_cast<uint8_t>(old_level + 1)));
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(new_root));
    BTreeNode node(guard.data());
    node.SetChild(0, root_);
    node.InnerInsertAt(0, split->sep, split->right);
    guard.MarkDirty();
    root_ = new_root;
    ++height_;
  }
  ++entry_count_;
  return Status::OK();
}

Result<std::optional<BTree::Split>> BTree::InsertRec(PageId node_page,
                                                     int64_t key,
                                                     const Rid& rid,
                                                     uint16_t flags) {
  KeyRid probe(key, rid);
  BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node_page));
  BTreeNode node(guard.data());

  if (node.is_leaf()) {
    // Reject duplicates: exact composite always, same key if unique.
    uint16_t pos = node.LeafLowerBound(probe);
    if (pos < node.count() && node.LeafEntryAt(pos) == probe) {
      return Status::AlreadyExists("entry (" + std::to_string(key) + ", " +
                                   rid.ToString() + ") already indexed");
    }
    if (options_.unique) {
      uint16_t kpos = node.LeafLowerBound(key);
      if (kpos < node.count() && node.LeafKey(kpos) == key) {
        return Status::AlreadyExists("unique key " + std::to_string(key) +
                                     " already indexed");
      }
      // The equal key could sit at the tail of the left sibling; the composite
      // descent lands here only if (key, rid) > that entry, i.e. same key.
      if (kpos == 0 && node.left_sibling() != kInvalidPageId) {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard left,
                                 pool_->FetchPage(node.left_sibling()));
        BTreeNode lnode(left.data());
        if (lnode.count() > 0 && lnode.LeafKey(lnode.count() - 1) == key) {
          return Status::AlreadyExists("unique key " + std::to_string(key) +
                                       " already indexed");
        }
      }
      // ... or at the head of the right sibling (stale separators after
      // deletes can route an equal-key probe one leaf to the left).
      if (kpos == node.count() && node.right_sibling() != kInvalidPageId) {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard right,
                                 pool_->FetchPage(node.right_sibling()));
        BTreeNode rnode(right.data());
        if (rnode.count() > 0 && rnode.LeafKey(0) == key) {
          return Status::AlreadyExists("unique key " + std::to_string(key) +
                                       " already indexed");
        }
      }
    }
    if (node.count() < leaf_capacity()) {
      node.LeafInsertAt(node.LeafLowerBound(probe), key, rid, flags);
      guard.MarkDirty();
      return std::optional<Split>();
    }
    Split split;
    BULKDEL_RETURN_IF_ERROR(SplitLeaf(guard, &split));
    // `guard` still pins the left node; pick the side for the new entry.
    if (probe <= split.sep) {
      node.LeafInsertAt(node.LeafLowerBound(probe), key, rid, flags);
      guard.MarkDirty();
    } else {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard right, pool_->FetchPage(split.right));
      BTreeNode rnode(right.data());
      rnode.LeafInsertAt(rnode.LeafLowerBound(probe), key, rid, flags);
      right.MarkDirty();
    }
    return std::optional<Split>(split);
  }

  uint16_t child_idx = node.ChildIndexFor(probe);
  PageId child = node.Child(child_idx);
  guard.Release();  // keep pin depth bounded during recursion

  BULKDEL_ASSIGN_OR_RETURN(std::optional<Split> child_split,
                           InsertRec(child, key, rid, flags));
  if (!child_split.has_value()) return std::optional<Split>();

  BULKDEL_ASSIGN_OR_RETURN(PageGuard reguard, pool_->FetchPage(node_page));
  BTreeNode renode(reguard.data());
  if (renode.count() < inner_capacity()) {
    renode.InnerInsertAt(child_idx, child_split->sep, child_split->right);
    reguard.MarkDirty();
    return std::optional<Split>();
  }
  Split split;
  BULKDEL_RETURN_IF_ERROR(SplitInner(reguard, &split));
  if (child_split->sep <= split.sep) {
    renode.InnerInsertAt(renode.ChildIndexFor(child_split->sep),
                         child_split->sep, child_split->right);
    reguard.MarkDirty();
  } else {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard right, pool_->FetchPage(split.right));
    BTreeNode rnode(right.data());
    rnode.InnerInsertAt(rnode.ChildIndexFor(child_split->sep),
                        child_split->sep, child_split->right);
    right.MarkDirty();
  }
  return std::optional<Split>(split);
}

Status BTree::SplitLeaf(PageGuard& leaf_guard, Split* split) {
  BTreeNode node(leaf_guard.data());
  uint16_t n = node.count();
  uint16_t keep = n / 2;

  BULKDEL_ASSIGN_OR_RETURN(PageId right_page, NewNode(0));
  BULKDEL_ASSIGN_OR_RETURN(PageGuard right_guard, pool_->FetchPage(right_page));
  BTreeNode right(right_guard.data());
  for (uint16_t i = keep; i < n; ++i) {
    right.SetLeafEntry(i - keep, node.LeafKey(i), node.LeafRid(i),
                       node.LeafFlags(i));
  }
  right.set_count(n - keep);
  node.set_count(keep);

  // Chain: left <-> right <-> old-right.
  PageId old_right = node.right_sibling();
  right.set_right_sibling(old_right);
  right.set_left_sibling(leaf_guard.page_id());
  node.set_right_sibling(right_page);
  if (old_right != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard orguard, pool_->FetchPage(old_right));
    BTreeNode ornode(orguard.data());
    ornode.set_left_sibling(right_page);
    orguard.MarkDirty();
  }
  leaf_guard.MarkDirty();
  right_guard.MarkDirty();
  split->sep = node.LeafEntryAt(keep - 1);
  split->right = right_page;
  return Status::OK();
}

Status BTree::SplitInner(PageGuard& inner_guard, Split* split) {
  BTreeNode node(inner_guard.data());
  uint16_t n = node.count();
  uint16_t mid = n / 2;  // separator `mid` is promoted

  BULKDEL_ASSIGN_OR_RETURN(PageId right_page, NewNode(node.level()));
  BULKDEL_ASSIGN_OR_RETURN(PageGuard right_guard, pool_->FetchPage(right_page));
  BTreeNode right(right_guard.data());
  right.Init(node.level());
  right.SetChild(0, node.Child(mid + 1));
  for (uint16_t i = mid + 1; i < n; ++i) {
    right.InnerInsertAt(i - mid - 1, node.InnerSep(i), node.Child(i + 1));
  }
  KeyRid promoted = node.InnerSep(mid);
  node.set_count(mid);

  PageId old_right = node.right_sibling();
  right.set_right_sibling(old_right);
  right.set_left_sibling(inner_guard.page_id());
  node.set_right_sibling(right_page);
  if (old_right != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard orguard, pool_->FetchPage(old_right));
    BTreeNode ornode(orguard.data());
    ornode.set_left_sibling(right_page);
    orguard.MarkDirty();
  }
  inner_guard.MarkDirty();
  right_guard.MarkDirty();
  split->sep = promoted;
  split->right = right_page;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Traditional (record-at-a-time) delete
// ---------------------------------------------------------------------------

Status BTree::Delete(int64_t key, const Rid& rid) {
  KeyRid probe(key, rid);
  BULKDEL_ASSIGN_OR_RETURN(PageId leaf, DescendToLeaf(probe));
  bool empty = false;
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(leaf));
    BTreeNode node(guard.data());
    uint16_t pos = node.LeafLowerBound(probe);
    if (pos >= node.count() || !(node.LeafEntryAt(pos) == probe)) {
      return Status::NotFound("entry (" + std::to_string(key) + ", " +
                              rid.ToString() + ") not indexed");
    }
    node.LeafRemoveAt(pos);
    guard.MarkDirty();
    empty = node.count() == 0;
  }
  --entry_count_;
  if (empty && height_ > 1) {
    BULKDEL_RETURN_IF_ERROR(UnlinkFromChain(leaf));
    BULKDEL_RETURN_IF_ERROR(FreeNode(leaf));
    BULKDEL_RETURN_IF_ERROR(RemoveChildAtLevel(1, leaf, probe));
  }
  return Status::OK();
}

Status BTree::DeleteKey(int64_t key, Rid* deleted_rid) {
  BULKDEL_ASSIGN_OR_RETURN(PageId start, DescendToLeaf(KeyRid::Min(key)));
  PageId cur = start;
  while (cur != kInvalidPageId) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      BTreeNode node(guard.data());
      uint16_t pos = node.LeafLowerBound(key);
      if (pos < node.count()) {
        if (node.LeafKey(pos) != key) {
          return Status::NotFound("key " + std::to_string(key) +
                                  " not indexed");
        }
        Rid rid = node.LeafRid(pos);
        if (deleted_rid != nullptr) *deleted_rid = rid;
        guard.Release();
        return Delete(key, rid);
      }
      next = node.right_sibling();
    }
    cur = next;
  }
  return Status::NotFound("key " + std::to_string(key) + " not indexed");
}

// ---------------------------------------------------------------------------
// Lookups and scans
// ---------------------------------------------------------------------------

Result<std::vector<Rid>> BTree::Search(int64_t key) {
  std::vector<Rid> rids;
  BULKDEL_RETURN_IF_ERROR(RangeScan(key, key, [&](int64_t, const Rid& rid) {
    rids.push_back(rid);
    return Status::OK();
  }));
  return rids;
}

Status BTree::RangeScan(
    int64_t lo, int64_t hi,
    const std::function<Status(int64_t, const Rid&)>& visitor) {
  BULKDEL_ASSIGN_OR_RETURN(PageId cur, DescendToLeaf(KeyRid::Min(lo)));
  LeafPrefetcher prefetch(pool_);
  while (cur != kInvalidPageId) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      BTreeNode node(guard.data());
      uint16_t n = node.count();
      for (uint16_t pos = node.LeafLowerBound(lo); pos < n; ++pos) {
        int64_t k = node.LeafKey(pos);
        if (k > hi) return Status::OK();
        BULKDEL_RETURN_IF_ERROR(visitor(k, node.LeafRid(pos)));
      }
      next = node.right_sibling();
    }
    prefetch.Announce(next);
    cur = next;
  }
  return Status::OK();
}

Status BTree::ScanAll(
    const std::function<Status(int64_t, const Rid&, uint16_t)>& visitor) {
  BULKDEL_ASSIGN_OR_RETURN(PageId cur, DescendToLeaf(KeyRid::Min(kMinKey)));
  LeafPrefetcher prefetch(pool_);
  while (cur != kInvalidPageId) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      BTreeNode node(guard.data());
      uint16_t n = node.count();
      for (uint16_t pos = 0; pos < n; ++pos) {
        BULKDEL_RETURN_IF_ERROR(
            visitor(node.LeafKey(pos), node.LeafRid(pos), node.LeafFlags(pos)));
      }
      next = node.right_sibling();
    }
    prefetch.Announce(next);
    cur = next;
  }
  return Status::OK();
}

Result<std::vector<PageId>> BTree::LeafChain() {
  std::vector<PageId> chain;
  BULKDEL_ASSIGN_OR_RETURN(PageId cur, DescendToLeaf(KeyRid::Min(kMinKey)));
  while (cur != kInvalidPageId) {
    chain.push_back(cur);
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
    cur = BTreeNode(guard.data()).right_sibling();
  }
  return chain;
}

// ---------------------------------------------------------------------------
// Free-at-empty plumbing
// ---------------------------------------------------------------------------

Status BTree::UnlinkFromChain(PageId node_page) {
  PageId left, right;
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(node_page));
    BTreeNode node(guard.data());
    left = node.left_sibling();
    right = node.right_sibling();
  }
  if (left != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(left));
    BTreeNode node(guard.data());
    node.set_right_sibling(right);
    guard.MarkDirty();
  }
  if (right != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(right));
    BTreeNode node(guard.data());
    node.set_left_sibling(left);
    guard.MarkDirty();
  }
  return Status::OK();
}

Status BTree::RemoveChildAtLevel(uint8_t parent_level, PageId child,
                                 const KeyRid& probe) {
  // Descend to the parent level by the child's (pre-deletion) smallest entry.
  PageId cur = root_;
  while (true) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
    BTreeNode node(guard.data());
    if (node.level() == parent_level) break;
    if (node.level() < parent_level) {
      return Status::Internal("RemoveChildAtLevel descended past level " +
                              std::to_string(parent_level));
    }
    cur = node.Child(node.ChildIndexFor(probe));
  }
  // Locate the owner node; walk the level chain right as a safety net.
  int idx = -1;
  while (cur != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
    BTreeNode node(guard.data());
    idx = node.FindChild(child);
    if (idx >= 0) break;
    cur = node.right_sibling();
  }
  if (cur == kInvalidPageId || idx < 0) {
    return Status::Corruption("parent of freed node " + std::to_string(child) +
                              " not found at level " +
                              std::to_string(parent_level));
  }

  BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
  BTreeNode node(guard.data());
  if (node.count() == 0) {
    // The node's only child is being removed: the node itself dies too.
    guard.Release();
    if (cur == root_) {
      // The entire tree is empty now: reinitialize as a single empty leaf.
      BULKDEL_RETURN_IF_ERROR(FreeNode(cur));
      BULKDEL_ASSIGN_OR_RETURN(PageId leaf, NewNode(0));
      root_ = leaf;
      height_ = 1;
      return Status::OK();
    }
    BULKDEL_RETURN_IF_ERROR(UnlinkFromChain(cur));
    BULKDEL_RETURN_IF_ERROR(FreeNode(cur));
    return RemoveChildAtLevel(static_cast<uint8_t>(parent_level + 1), cur,
                              probe);
  }
  if (idx == 0) {
    node.InnerRemoveChild0();
  } else {
    node.InnerRemoveAt(static_cast<uint16_t>(idx - 1));
  }
  guard.MarkDirty();
  guard.Release();
  if (cur == root_) return MaybeCollapseRoot();
  return Status::OK();
}

Status BTree::MaybeCollapseRoot() {
  while (height_ > 1) {
    PageId only_child;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(root_));
      BTreeNode node(guard.data());
      if (node.is_leaf() || node.count() > 0) return Status::OK();
      only_child = node.Child(0);
    }
    PageId old_root = root_;
    root_ = only_child;
    --height_;
    BULKDEL_RETURN_IF_ERROR(FreeNode(old_root));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

namespace {
/// Frees a whole subtree below `page` (page included). Local helper for
/// BulkLoad/Drop; reads the child list before freeing to bound pin depth.
Status FreeSubtree(BufferPool* pool, PageId page, uint32_t* leaves,
                   uint32_t* inners) {
  std::vector<PageId> children;
  bool leaf;
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool->FetchPage(page));
    BTreeNode node(guard.data());
    leaf = node.is_leaf();
    if (!leaf) {
      for (uint16_t i = 0; i <= node.count(); ++i) {
        children.push_back(node.Child(i));
      }
    }
  }
  for (PageId child : children) {
    BULKDEL_RETURN_IF_ERROR(FreeSubtree(pool, child, leaves, inners));
  }
  BULKDEL_RETURN_IF_ERROR(pool->DeletePage(page));
  if (leaf) {
    ++*leaves;
  } else {
    ++*inners;
  }
  return Status::OK();
}
}  // namespace

Status BTree::BulkLoad(const std::vector<KeyRid>& entries, double fill) {
  if (fill <= 0.0 || fill > 1.0) {
    return Status::InvalidArgument("fill factor must be in (0, 1]");
  }
  // Free the current contents.
  uint32_t freed_leaves = 0, freed_inner = 0;
  BULKDEL_RETURN_IF_ERROR(
      FreeSubtree(pool_, root_, &freed_leaves, &freed_inner));
  num_leaves_ -= freed_leaves;
  num_inner_ -= freed_inner;
  entry_count_ = 0;

  if (entries.empty()) {
    BULKDEL_ASSIGN_OR_RETURN(PageId leaf, NewNode(0));
    root_ = leaf;
    height_ = 1;
    return FlushMeta();
  }

  uint16_t per_leaf = std::max<uint16_t>(
      1, static_cast<uint16_t>(static_cast<double>(leaf_capacity()) * fill));
  std::vector<std::pair<KeyRid, PageId>> level;  // (max composite, page)
  PageId prev = kInvalidPageId;
  size_t i = 0;
  while (i < entries.size()) {
    size_t take = std::min<size_t>(per_leaf, entries.size() - i);
    // Avoid a pathologically small final leaf: split the tail evenly.
    if (entries.size() - i - take > 0 && entries.size() - i - take < per_leaf / 2) {
      take = (entries.size() - i + 1) / 2;
    }
    BULKDEL_ASSIGN_OR_RETURN(PageId page, NewNode(0));
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
    BTreeNode node(guard.data());
    for (size_t j = 0; j < take; ++j) {
      const KeyRid& e = entries[i + j];
      node.SetLeafEntry(static_cast<uint16_t>(j), e.key, e.rid, 0);
    }
    node.set_count(static_cast<uint16_t>(take));
    node.set_left_sibling(prev);
    guard.MarkDirty();
    if (prev != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard pguard, pool_->FetchPage(prev));
      BTreeNode pnode(pguard.data());
      pnode.set_right_sibling(page);
      pguard.MarkDirty();
    }
    level.emplace_back(entries[i + take - 1], page);
    prev = page;
    i += take;
  }
  entry_count_ = entries.size();
  return BuildUpperLevels(std::move(level), fill);
}

Status BTree::BulkInsertSorted(const std::vector<KeyRid>& entries) {
  if (entries.empty()) return Status::OK();
  // Small batch: ordered point inserts (the sorted stream keeps the inner
  // path cached, so this is already near-sequential).
  if (entries.size() < entry_count_ / 8 || entry_count_ == 0) {
    for (const KeyRid& e : entries) {
      BULKDEL_RETURN_IF_ERROR(Insert(e.key, e.rid));
    }
    return Status::OK();
  }
  // Large batch: merge the existing leaf level with the new entries and
  // rebuild — one sequential pass over the leaves, like the bulk delete.
  std::vector<KeyRid> merged;
  merged.reserve(entry_count_ + entries.size());
  size_t i = 0;
  Status dup = Status::OK();
  BULKDEL_RETURN_IF_ERROR(
      ScanAll([&](int64_t key, const Rid& rid, uint16_t) {
        KeyRid existing(key, rid);
        while (i < entries.size() && entries[i] < existing) {
          merged.push_back(entries[i++]);
        }
        if (i < entries.size() &&
            (entries[i] == existing ||
             (options_.unique && entries[i].key == key))) {
          dup = Status::AlreadyExists("bulk insert of existing entry for key " +
                                      std::to_string(entries[i].key));
        }
        merged.push_back(existing);
        return dup;
      }));
  if (!dup.ok()) return dup;
  while (i < entries.size()) merged.push_back(entries[i++]);
  if (options_.unique) {
    for (size_t j = 1; j < merged.size(); ++j) {
      if (merged[j].key == merged[j - 1].key) {
        return Status::AlreadyExists("duplicate key in unique bulk insert");
      }
    }
  }
  return BulkLoad(merged);
}

Status BTree::BuildUpperLevels(std::vector<std::pair<KeyRid, PageId>> children,
                               double fill) {
  uint8_t level_no = 1;
  while (children.size() > 1) {
    size_t per_node =
        std::max<size_t>(2, static_cast<size_t>(
                                static_cast<double>(inner_capacity()) * fill) +
                                1);  // children per inner node
    std::vector<std::pair<KeyRid, PageId>> next;
    PageId prev = kInvalidPageId;
    size_t i = 0;
    while (i < children.size()) {
      size_t remaining = children.size() - i;
      size_t take;
      if (remaining <= per_node) {
        take = remaining;
      } else if (remaining == per_node + 1) {
        // Balance the tail so no group ends up with a single child.
        take = remaining / 2;
      } else {
        take = per_node;
      }
      BULKDEL_ASSIGN_OR_RETURN(PageId page, NewNode(level_no));
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(page));
      BTreeNode node(guard.data());
      node.SetChild(0, children[i].second);
      for (size_t j = 1; j < take; ++j) {
        node.InnerInsertAt(static_cast<uint16_t>(j - 1),
                           children[i + j - 1].first,
                           children[i + j].second);
      }
      node.set_left_sibling(prev);
      guard.MarkDirty();
      if (prev != kInvalidPageId) {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard pguard, pool_->FetchPage(prev));
        BTreeNode pnode(pguard.data());
        pnode.set_right_sibling(page);
        pguard.MarkDirty();
      }
      next.emplace_back(children[i + take - 1].first, page);
      prev = page;
      i += take;
    }
    children = std::move(next);
    ++level_no;
  }
  root_ = children[0].second;
  height_ = level_no;
  return FlushMeta();
}

// ---------------------------------------------------------------------------
// Bulk delete primitives
// ---------------------------------------------------------------------------

Status BTree::BulkDeleteSortedKeys(
    const std::vector<int64_t>& keys, ReorgMode reorg,
    std::vector<Rid>* deleted_rids, BtreeBulkDeleteStats* stats,
    const std::function<void(int64_t, const Rid&)>& on_delete) {
  BtreeBulkDeleteStats local;
  std::vector<EmptyLeaf> empties;
  if (!keys.empty()) {
    BULKDEL_ASSIGN_OR_RETURN(PageId cur,
                             DescendToLeaf(KeyRid::Min(keys.front())));
    LeafPrefetcher prefetch(pool_);
    size_t i = 0;
    while (cur != kInvalidPageId && i < keys.size()) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      BTreeNode node(guard.data());
      ++local.leaves_visited;
      KeyRid probe0 =
          node.count() > 0 ? node.LeafEntryAt(0) : KeyRid::Min(kMinKey);
      bool modified = false;
      uint16_t pos = 0;
      while (pos < node.count() && i < keys.size()) {
        int64_t k = node.LeafKey(pos);
        if (k < keys[i]) {
          pos = node.LeafLowerBound(keys[i]);
          continue;
        }
        if (k > keys[i]) {
          ++i;
          continue;
        }
        if (node.LeafFlags(pos) & BTreeNode::kEntryUndeletable) {
          ++local.skipped_undeletable;
          ++pos;
          continue;
        }
        if (deleted_rids != nullptr) deleted_rids->push_back(node.LeafRid(pos));
        if (on_delete) on_delete(k, node.LeafRid(pos));
        node.LeafRemoveAt(pos);
        modified = true;
        ++local.entries_deleted;
      }
      if (modified) guard.MarkDirty();
      if (node.count() == 0 && height_ > 1) {
        empties.push_back(EmptyLeaf{cur, probe0});
      }
      PageId next = node.right_sibling();
      guard.Release();
      prefetch.Announce(next);
      cur = next;
    }
  }
  entry_count_ -= local.entries_deleted;
  BULKDEL_RETURN_IF_ERROR(FinishBulkDelete(std::move(empties), reorg, &local));
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status BTree::BulkDeleteSortedEntries(const std::vector<KeyRid>& entries,
                                      ReorgMode reorg,
                                      BtreeBulkDeleteStats* stats) {
  BtreeBulkDeleteStats local;
  std::vector<EmptyLeaf> empties;
  if (!entries.empty()) {
    BULKDEL_ASSIGN_OR_RETURN(PageId cur, DescendToLeaf(entries.front()));
    LeafPrefetcher prefetch(pool_);
    size_t i = 0;
    while (cur != kInvalidPageId && i < entries.size()) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      BTreeNode node(guard.data());
      ++local.leaves_visited;
      KeyRid probe0 =
          node.count() > 0 ? node.LeafEntryAt(0) : KeyRid::Min(kMinKey);
      bool modified = false;
      uint16_t pos = 0;
      while (pos < node.count() && i < entries.size()) {
        KeyRid e = node.LeafEntryAt(pos);
        if (e < entries[i]) {
          pos = node.LeafLowerBound(entries[i]);
          continue;
        }
        if (entries[i] < e) {
          ++i;
          continue;
        }
        if (node.LeafFlags(pos) & BTreeNode::kEntryUndeletable) {
          ++local.skipped_undeletable;
          ++pos;
          ++i;
          continue;
        }
        node.LeafRemoveAt(pos);
        modified = true;
        ++local.entries_deleted;
        ++i;
      }
      if (modified) guard.MarkDirty();
      if (node.count() == 0 && height_ > 1) {
        empties.push_back(EmptyLeaf{cur, probe0});
      }
      PageId next = node.right_sibling();
      guard.Release();
      prefetch.Announce(next);
      cur = next;
    }
  }
  entry_count_ -= local.entries_deleted;
  BULKDEL_RETURN_IF_ERROR(FinishBulkDelete(std::move(empties), reorg, &local));
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status BTree::BulkDeleteByPredicate(
    const std::function<bool(int64_t, const Rid&)>& pred, ReorgMode reorg,
    BtreeBulkDeleteStats* stats, std::optional<int64_t> lo,
    std::optional<int64_t> hi,
    const std::function<void(int64_t, const Rid&)>& on_delete) {
  BtreeBulkDeleteStats local;
  std::vector<EmptyLeaf> empties;
  PageId cur;
  {
    BULKDEL_ASSIGN_OR_RETURN(
        PageId start, DescendToLeaf(KeyRid::Min(lo.has_value() ? *lo : kMinKey)));
    cur = start;
  }
  LeafPrefetcher prefetch(pool_);
  bool done = false;
  while (cur != kInvalidPageId && !done) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
    BTreeNode node(guard.data());
    ++local.leaves_visited;
    KeyRid probe0 =
        node.count() > 0 ? node.LeafEntryAt(0) : KeyRid::Min(kMinKey);
    bool modified = false;
    uint16_t pos = 0;
    while (pos < node.count()) {
      int64_t k = node.LeafKey(pos);
      if (hi.has_value() && k > *hi) {
        done = true;
        break;
      }
      if ((lo.has_value() && k < *lo) || !pred(k, node.LeafRid(pos))) {
        ++pos;
        continue;
      }
      if (node.LeafFlags(pos) & BTreeNode::kEntryUndeletable) {
        ++local.skipped_undeletable;
        ++pos;
        continue;
      }
      if (on_delete) on_delete(k, node.LeafRid(pos));
      node.LeafRemoveAt(pos);
      modified = true;
      ++local.entries_deleted;
    }
    if (modified) guard.MarkDirty();
    if (node.count() == 0 && height_ > 1) {
      empties.push_back(EmptyLeaf{cur, probe0});
    }
    PageId next = node.right_sibling();
    guard.Release();
    if (!done) prefetch.Announce(next);
    cur = next;
  }
  entry_count_ -= local.entries_deleted;
  BULKDEL_RETURN_IF_ERROR(FinishBulkDelete(std::move(empties), reorg, &local));
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status BTree::BulkDeleteRange(
    int64_t lo, int64_t hi, ReorgMode reorg, std::vector<Rid>* deleted_rids,
    BtreeBulkDeleteStats* stats,
    const std::function<Status(PageId, const std::vector<KeyRid>&)>&
        on_leaf_drop,
    const std::function<void(int64_t, const Rid&)>& on_delete,
    std::vector<PageId>* dropped_pages) {
  deferred_frees_ = dropped_pages;
  Status status = BulkDeleteRangeLocked(lo, hi, reorg, deleted_rids, stats,
                                        on_leaf_drop, on_delete);
  deferred_frees_ = nullptr;
  return status;
}

Status BTree::BulkDeleteRangeLocked(
    int64_t lo, int64_t hi, ReorgMode reorg, std::vector<Rid>* deleted_rids,
    BtreeBulkDeleteStats* stats,
    const std::function<Status(PageId, const std::vector<KeyRid>&)>&
        on_leaf_drop,
    const std::function<void(int64_t, const Rid&)>& on_delete) {
  BtreeBulkDeleteStats local;
  std::vector<EmptyLeaf> empties;
  // Contiguous dropped-leaf runs are spliced out of the sibling chain with
  // two boundary writes (the left neighbor's right pointer and the right
  // neighbor's left pointer); the dropped leaves themselves are never
  // modified, so the only per-leaf charge is the read that harvested their
  // entries. Parent maintenance dirties one inner page per fan-out children.
  std::vector<EmptyLeaf> run;
  PageId run_left = kInvalidPageId;
  auto close_run = [&]() -> Status {
    if (run.empty()) return Status::OK();
    if (run_left != kInvalidPageId) {
      PageId next;
      {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard guard,
                                 pool_->FetchPage(run.back().page));
        next = BTreeNode(guard.data()).right_sibling();
      }
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(run_left));
      BTreeNode left_node(guard.data());
      left_node.set_right_sibling(next);
      guard.MarkDirty();
    }
    for (const EmptyLeaf& d : run) {
      if (d.page == root_) {
        // Root collapse promoted this dropped leaf to be the whole tree: it
        // survives as the empty root, so it must actually be emptied (the
        // one dropped leaf whose image is written) — and unhooked from its
        // freed former neighbors.
        BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(d.page));
        BTreeNode node(guard.data());
        node.LeafRemoveRange(0, node.count());
        node.set_left_sibling(kInvalidPageId);
        node.set_right_sibling(kInvalidPageId);
        guard.MarkDirty();
        continue;
      }
      BULKDEL_RETURN_IF_ERROR(FreeNode(d.page));
      if (height_ > 1) {
        BULKDEL_RETURN_IF_ERROR(RemoveChildAtLevel(1, d.page, d.probe));
      }
      ++local.leaves_freed;
    }
    run.clear();
    return Status::OK();
  };
  if (lo <= hi) {
    BULKDEL_ASSIGN_OR_RETURN(PageId cur, DescendToLeaf(KeyRid::Min(lo)));
    LeafPrefetcher prefetch(pool_);
    bool done = false;
    while (cur != kInvalidPageId && !done) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      BTreeNode node(guard.data());
      ++local.leaves_visited;
      uint16_t count = node.count();
      KeyRid probe0 = count > 0 ? node.LeafEntryAt(0) : KeyRid::Min(kMinKey);
      // Leaf-run fast path: every entry covered by [lo, hi] and none pinned
      // undeletable — the leaf dies whole: one drop record, no write, no
      // per-entry removal.
      bool run_leaf = count > 0 && height_ > 1 && node.LeafKey(0) >= lo &&
                      node.LeafKey(static_cast<uint16_t>(count - 1)) <= hi;
      if (run_leaf) {
        for (uint16_t pos = 0; pos < count; ++pos) {
          if (node.LeafFlags(pos) & BTreeNode::kEntryUndeletable) {
            run_leaf = false;
            break;
          }
        }
      }
      if (run_leaf) {
        std::vector<KeyRid> harvest;
        harvest.reserve(count);
        for (uint16_t pos = 0; pos < count; ++pos) {
          harvest.push_back(node.LeafEntryAt(pos));
        }
        if (on_leaf_drop) BULKDEL_RETURN_IF_ERROR(on_leaf_drop(cur, harvest));
        if (deleted_rids != nullptr) {
          for (const KeyRid& e : harvest) deleted_rids->push_back(e.rid);
        }
        if (run.empty()) run_left = node.left_sibling();
        run.push_back(EmptyLeaf{cur, probe0});
        local.entries_deleted += count;
        ++local.leaves_dropped;
        PageId next = node.right_sibling();
        guard.Release();
        prefetch.Announce(next);
        cur = next;
        continue;
      }
      // Boundary (or marker-pinned) leaf: splice any open run out of the
      // chain before the per-entry pass mutates this leaf.
      if (!run.empty()) {
        node.set_left_sibling(run_left);
        guard.MarkDirty();
        BULKDEL_RETURN_IF_ERROR(close_run());
      }
      // Per-entry removal.
      bool modified = false;
      uint16_t pos = count > 0 ? node.LeafLowerBound(lo) : 0;
      while (pos < node.count()) {
        int64_t k = node.LeafKey(pos);
        if (k > hi) {
          done = true;
          break;
        }
        if (node.LeafFlags(pos) & BTreeNode::kEntryUndeletable) {
          ++local.skipped_undeletable;
          ++pos;
          continue;
        }
        if (deleted_rids != nullptr) deleted_rids->push_back(node.LeafRid(pos));
        if (on_delete) on_delete(k, node.LeafRid(pos));
        node.LeafRemoveAt(pos);
        modified = true;
        ++local.entries_deleted;
      }
      if (modified) guard.MarkDirty();
      if (node.count() == 0 && height_ > 1) {
        empties.push_back(EmptyLeaf{cur, probe0});
      }
      PageId next = node.right_sibling();
      guard.Release();
      if (!done) prefetch.Announce(next);
      cur = next;
    }
    // A run still open here ran off the right end of the chain (or the range
    // covered everything up to a leaf we never fetched): splice it out now.
    BULKDEL_RETURN_IF_ERROR(close_run());
  }
  entry_count_ -= local.entries_deleted;
  BULKDEL_RETURN_IF_ERROR(FinishBulkDelete(std::move(empties), reorg, &local));
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status BTree::FinishBulkDelete(std::vector<EmptyLeaf> empties, ReorgMode reorg,
                               BtreeBulkDeleteStats* stats) {
  // Free-at-empty: reclaim completely empty leaves [9] and fix their parents.
  for (const EmptyLeaf& e : empties) {
    // Root collapse during an earlier iteration may have promoted this leaf
    // to be the (empty) root; an empty root leaf is a legal empty tree.
    if (e.page == root_) continue;
    BULKDEL_RETURN_IF_ERROR(UnlinkFromChain(e.page));
    BULKDEL_RETURN_IF_ERROR(FreeNode(e.page));
    if (height_ > 1) {
      BULKDEL_RETURN_IF_ERROR(RemoveChildAtLevel(1, e.page, e.probe));
    }
    ++stats->leaves_freed;
  }
  switch (reorg) {
    case ReorgMode::kFreeAtEmpty:
      break;
    case ReorgMode::kCompactAndRebuild:
      BULKDEL_RETURN_IF_ERROR(CompactAndRebuild());
      break;
    case ReorgMode::kIncrementalBaseNode:
      BULKDEL_RETURN_IF_ERROR(IncrementalBaseNodeReorg());
      break;
  }
  return FlushMeta();
}

Status BTree::MergeLookupSortedKeys(
    const std::vector<int64_t>& keys,
    const std::function<Status(int64_t, const Rid&)>& visitor) {
  if (keys.empty()) return Status::OK();
  BULKDEL_ASSIGN_OR_RETURN(PageId cur, DescendToLeaf(KeyRid::Min(keys.front())));
  LeafPrefetcher prefetch(pool_);
  size_t i = 0;
  while (cur != kInvalidPageId && i < keys.size()) {
    PageId next;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      BTreeNode node(guard.data());
      uint16_t pos = 0;
      while (pos < node.count() && i < keys.size()) {
        int64_t k = node.LeafKey(pos);
        if (k < keys[i]) {
          pos = node.LeafLowerBound(keys[i]);
          continue;
        }
        if (k > keys[i]) {
          ++i;
          continue;
        }
        BULKDEL_RETURN_IF_ERROR(visitor(k, node.LeafRid(pos)));
        ++pos;
      }
      next = node.right_sibling();
    }
    prefetch.Announce(next);
    cur = next;
  }
  return Status::OK();
}

Result<uint64_t> BTree::CountMatchingSortedKeys(
    const std::vector<int64_t>& keys) {
  uint64_t count = 0;
  BULKDEL_RETURN_IF_ERROR(
      MergeLookupSortedKeys(keys, [&](int64_t, const Rid&) {
        ++count;
        return Status::OK();
      }));
  return count;
}

Status BTree::ClearUndeletableFlags() {
  BULKDEL_ASSIGN_OR_RETURN(PageId cur, DescendToLeaf(KeyRid::Min(kMinKey)));
  LeafPrefetcher prefetch(pool_);
  while (cur != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
    BTreeNode node(guard.data());
    bool modified = false;
    uint16_t n = node.count();
    for (uint16_t i = 0; i < n; ++i) {
      if (node.LeafFlags(i) & BTreeNode::kEntryUndeletable) {
        node.SetLeafFlags(
            i, node.LeafFlags(i) & ~BTreeNode::kEntryUndeletable);
        modified = true;
      }
    }
    if (modified) guard.MarkDirty();
    PageId next = node.right_sibling();
    guard.Release();
    prefetch.Announce(next);
    cur = next;
  }
  return Status::OK();
}

Status BTree::RecountFromScan() {
  uint64_t entries = 0;
  uint32_t leaves = 0;
  uint32_t inners = 0;
  PageId level_head = root_;
  int levels = 0;
  while (level_head != kInvalidPageId) {
    PageId next_head = kInvalidPageId;
    PageId cur = level_head;
    bool leaf_level = false;
    while (cur != kInvalidPageId) {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      BTreeNode node(guard.data());
      leaf_level = node.is_leaf();
      if (cur == level_head && !leaf_level) next_head = node.Child(0);
      if (leaf_level) {
        ++leaves;
        entries += node.count();
      } else {
        ++inners;
      }
      cur = node.right_sibling();
    }
    ++levels;
    if (leaf_level) break;
    level_head = next_head;
  }
  entry_count_ = entries;
  num_leaves_ = leaves;
  num_inner_ = inners;
  height_ = levels;
  return FlushMeta();
}

Status BTree::Drop() {
  uint32_t leaves = 0, inners = 0;
  BULKDEL_RETURN_IF_ERROR(FreeSubtree(pool_, root_, &leaves, &inners));
  num_leaves_ -= leaves;
  num_inner_ -= inners;
  BULKDEL_RETURN_IF_ERROR(pool_->DeletePage(meta_page_));
  root_ = kInvalidPageId;
  height_ = 0;
  entry_count_ = 0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Invariant checking (test support)
// ---------------------------------------------------------------------------

namespace {
struct CheckContext {
  BufferPool* pool;
  const BTree* tree;
  std::vector<std::vector<PageId>> levels;  // per level, in left-to-right order
  uint64_t entries = 0;
  uint32_t leaves = 0;
  uint32_t inners = 0;
};

Status CheckNode(CheckContext* ctx, PageId page, int expected_level,
                 const KeyRid* lo, const KeyRid* hi) {
  // Copy the node out so recursion never holds more than one pin.
  char buf[kPageSize];
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, ctx->pool->FetchPage(page));
    std::memcpy(buf, guard.data(), kPageSize);
  }
  BTreeNode node(buf);
  if (node.level() != expected_level) {
    return Status::Corruption("node " + std::to_string(page) +
                              ": level mismatch");
  }
  if (static_cast<size_t>(expected_level) >= ctx->levels.size()) {
    return Status::Corruption("node deeper than tree height");
  }
  ctx->levels[expected_level].push_back(page);

  if (node.is_leaf()) {
    ++ctx->leaves;
    ctx->entries += node.count();
    for (uint16_t i = 0; i < node.count(); ++i) {
      KeyRid e = node.LeafEntryAt(i);
      if (i > 0 && !(node.LeafEntryAt(i - 1) < e)) {
        return Status::Corruption("leaf " + std::to_string(page) +
                                  ": entries not strictly sorted");
      }
      if (lo != nullptr && !(*lo < e)) {
        return Status::Corruption("leaf " + std::to_string(page) +
                                  ": entry below lower bound");
      }
      if (hi != nullptr && !(e <= *hi)) {
        return Status::Corruption("leaf " + std::to_string(page) +
                                  ": entry above upper bound");
      }
    }
    return Status::OK();
  }

  ++ctx->inners;
  uint16_t n = node.count();
  for (uint16_t i = 1; i < n; ++i) {
    if (!(node.InnerSep(i - 1) < node.InnerSep(i))) {
      return Status::Corruption("inner " + std::to_string(page) +
                                ": separators not strictly sorted");
    }
  }
  for (uint16_t i = 0; i <= n; ++i) {
    KeyRid lo_sep, hi_sep;
    const KeyRid* child_lo = lo;
    const KeyRid* child_hi = hi;
    if (i > 0) {
      lo_sep = node.InnerSep(i - 1);
      child_lo = &lo_sep;
    }
    if (i < n) {
      hi_sep = node.InnerSep(i);
      child_hi = &hi_sep;
    }
    BULKDEL_RETURN_IF_ERROR(
        CheckNode(ctx, node.Child(i), expected_level - 1, child_lo, child_hi));
  }
  return Status::OK();
}
}  // namespace

Status BTree::CheckInvariants() {
  if (root_ == kInvalidPageId) {
    return Status::Corruption("tree has no root");
  }
  CheckContext ctx;
  ctx.pool = pool_;
  ctx.tree = this;
  ctx.levels.resize(static_cast<size_t>(height_));
  BULKDEL_RETURN_IF_ERROR(
      CheckNode(&ctx, root_, height_ - 1, nullptr, nullptr));

  if (ctx.entries != entry_count_) {
    return Status::Corruption("entry count mismatch: meta says " +
                              std::to_string(entry_count_) + ", tree has " +
                              std::to_string(ctx.entries));
  }
  if (ctx.leaves != num_leaves_ || ctx.inners != num_inner_) {
    return Status::Corruption("node count bookkeeping mismatch");
  }
  // Sibling chains per level must match in-order traversal.
  for (const std::vector<PageId>& level : ctx.levels) {
    for (size_t i = 0; i < level.size(); ++i) {
      char buf[kPageSize];
      {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(level[i]));
        std::memcpy(buf, guard.data(), kPageSize);
      }
      BTreeNode node(buf);
      PageId want_left = i == 0 ? kInvalidPageId : level[i - 1];
      PageId want_right = i + 1 == level.size() ? kInvalidPageId : level[i + 1];
      if (node.left_sibling() != want_left ||
          node.right_sibling() != want_right) {
        return Status::Corruption("sibling chain broken at page " +
                                  std::to_string(level[i]));
      }
    }
  }
  // Empty leaves are only legal as the root of an empty tree.
  if (height_ > 1) {
    for (PageId leaf : ctx.levels[0]) {
      char buf[kPageSize];
      {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(leaf));
        std::memcpy(buf, guard.data(), kPageSize);
      }
      if (BTreeNode(buf).count() == 0) {
        return Status::Corruption("empty leaf " + std::to_string(leaf) +
                                  " survived free-at-empty");
      }
    }
  }
  return Status::OK();
}

}  // namespace bulkdel

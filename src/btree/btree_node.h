#ifndef BULKDEL_BTREE_BTREE_NODE_H_
#define BULKDEL_BTREE_BTREE_NODE_H_

#include <cstdint>

#include "storage/page.h"
#include "table/rid.h"
#include "util/coding.h"

namespace bulkdel {

/// Composite (key, RID) index entry. Entries in a leaf are ordered by
/// (key, RID), which supports duplicate keys and the paper's two primary
/// bulk-delete predicates: lookup by key (with RID as tie-breaker) and probe
/// by RID.
struct KeyRid {
  int64_t key = 0;
  Rid rid;

  KeyRid() = default;
  KeyRid(int64_t k, Rid r) : key(k), rid(r) {}

  /// Smallest / largest possible composite values; used as descent probes for
  /// key-only searches.
  static KeyRid Min(int64_t key) { return KeyRid(key, Rid(0, 0)); }
  static KeyRid Max(int64_t key) {
    return KeyRid(key, Rid(kInvalidPageId, 0xFFFF));
  }

  friend bool operator==(const KeyRid& a, const KeyRid& b) {
    return a.key == b.key && a.rid == b.rid;
  }
  friend bool operator<(const KeyRid& a, const KeyRid& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.rid < b.rid;
  }
  friend bool operator<=(const KeyRid& a, const KeyRid& b) {
    return !(b < a);
  }
};

/// View over one B-link-tree node page.
///
/// Every level is sibling-chained left-to-right (and back), following
/// Lehman/Yao's B-link organization [10] — the paper needs the chains to scan
/// the leaf level sequentially during bulk deletes and to rebuild or
/// reorganize inner levels layer by layer (§2.3).
///
/// Separators are composite (key, RID) pairs: child i of an inner node covers
/// composite values in (sep[i-1], sep[i]]. Composite separators keep the tree
/// exact in the presence of duplicate keys even when equal keys straddle a
/// split boundary.
///
/// Layout (offsets in bytes):
///   header (16): [u8 level][u8 flags][u16 count][u32 right][u32 left][u32 rsv]
///   leaf:  entries at 16, stride 16: [i64 key][u32 rid.page][u16 rid.slot]
///          [u16 entry_flags]
///   inner: child0 (u32) at 16, entries at 20, stride 20:
///          [i64 key][u32 rid.page][u16 rid.slot][u16 pad][u32 child]
class BTreeNode {
 public:
  static constexpr uint32_t kHeaderSize = 16;
  static constexpr uint32_t kLeafEntrySize = 16;
  static constexpr uint32_t kInnerEntrySize = 20;

  /// Leaf entry flag: entry was inserted by a concurrent updater while the
  /// index was off-line during a bulk delete; the bulk deleter must not
  /// remove it even if it matches the delete set (§3.1.2).
  static constexpr uint16_t kEntryUndeletable = 0x1;

  /// Max entries dictated by the page size alone.
  static constexpr uint16_t LeafPageCapacity() {
    return static_cast<uint16_t>((kPageSize - kHeaderSize) / kLeafEntrySize);
  }
  static constexpr uint16_t InnerPageCapacity() {
    return static_cast<uint16_t>((kPageSize - kHeaderSize - 4) /
                                 kInnerEntrySize);
  }

  explicit BTreeNode(char* data) : data_(data) {}

  // -- Header ---------------------------------------------------------------
  uint8_t level() const { return static_cast<uint8_t>(data_[0]); }
  bool is_leaf() const { return level() == 0; }
  uint16_t count() const { return LoadU16(data_ + 2); }
  void set_count(uint16_t c) { StoreU16(data_ + 2, c); }
  PageId right_sibling() const { return LoadU32(data_ + 4); }
  void set_right_sibling(PageId p) { StoreU32(data_ + 4, p); }
  PageId left_sibling() const { return LoadU32(data_ + 8); }
  void set_left_sibling(PageId p) { StoreU32(data_ + 8, p); }

  /// Formats the buffer as an empty node of `level` (0 = leaf).
  void Init(uint8_t level);

  // -- Leaf entries ---------------------------------------------------------
  int64_t LeafKey(uint16_t i) const { return LoadI64(LeafEntry(i)); }
  Rid LeafRid(uint16_t i) const {
    return Rid(LoadU32(LeafEntry(i) + 8), LoadU16(LeafEntry(i) + 12));
  }
  uint16_t LeafFlags(uint16_t i) const { return LoadU16(LeafEntry(i) + 14); }
  void SetLeafFlags(uint16_t i, uint16_t flags) {
    StoreU16(LeafEntry(i) + 14, flags);
  }
  KeyRid LeafEntryAt(uint16_t i) const {
    return KeyRid(LeafKey(i), LeafRid(i));
  }
  void SetLeafEntry(uint16_t i, int64_t key, const Rid& rid, uint16_t flags);

  /// Shifts entries [i, count) right and writes the new entry at i.
  void LeafInsertAt(uint16_t i, int64_t key, const Rid& rid, uint16_t flags);
  /// Removes entry i, shifting the tail left.
  void LeafRemoveAt(uint16_t i);
  /// Removes entries [from, to), shifting the tail left.
  void LeafRemoveRange(uint16_t from, uint16_t to);

  /// First index with key >= probe key; `count()` if none.
  uint16_t LeafLowerBound(int64_t key) const;
  /// First index with (key, rid) >= probe; `count()` if none.
  uint16_t LeafLowerBound(const KeyRid& probe) const;

  // -- Inner entries ----------------------------------------------------------
  PageId Child(uint16_t i) const;  // i in [0, count]
  void SetChild(uint16_t i, PageId p);
  KeyRid InnerSep(uint16_t i) const {  // i in [0, count)
    const char* e = InnerEntry(i);
    return KeyRid(LoadI64(e), Rid(LoadU32(e + 8), LoadU16(e + 12)));
  }
  void SetInnerSep(uint16_t i, const KeyRid& sep);

  /// Inserts separator `sep` at position i with `right_child` as child i+1.
  void InnerInsertAt(uint16_t i, const KeyRid& sep, PageId right_child);
  /// Removes child i+1 and separator i.
  void InnerRemoveAt(uint16_t i);
  /// Removes child 0; child 1 becomes the new child 0 and separator 0 is
  /// dropped.
  void InnerRemoveChild0();

  /// Child index to follow for composite probe: the first i with
  /// probe <= sep[i]; count() (the rightmost child) if none.
  uint16_t ChildIndexFor(const KeyRid& probe) const;

  /// Linear scan for `child`; returns its index or -1.
  int FindChild(PageId child) const;

 private:
  char* LeafEntry(uint16_t i) const {
    return data_ + kHeaderSize + static_cast<uint32_t>(i) * kLeafEntrySize;
  }
  char* InnerEntry(uint16_t i) const {
    return data_ + kHeaderSize + 4 +
           static_cast<uint32_t>(i) * kInnerEntrySize;
  }

  char* data_;
};

}  // namespace bulkdel

#endif  // BULKDEL_BTREE_BTREE_NODE_H_

// B-link-tree reorganization during/after bulk deletion (paper §2.3).
//
// All three plans scan the leaf level left to right, so leaves can be
// compacted and merged with neighbors at very little extra cost, and the
// inner levels can be updated either layer-by-layer afterwards (the full
// B-link organization makes each layer a chain), or on the fly per
// "base node" subtree, adapting Zou & Salzberg's on-line reorganization [26].

#include <cstring>
#include <limits>
#include <vector>

#include "btree/btree.h"

namespace bulkdel {

namespace {
constexpr int64_t kMinKey = std::numeric_limits<int64_t>::min();

struct LeafEntryBuf {
  int64_t key;
  Rid rid;
  uint16_t flags;
};

/// Reads all entries of a leaf into a local buffer (bounds pin time).
Status LoadLeafEntries(BufferPool* pool, PageId page,
                       std::vector<LeafEntryBuf>* out, PageId* right) {
  BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool->FetchPage(page));
  BTreeNode node(guard.data());
  out->clear();
  out->reserve(node.count());
  for (uint16_t i = 0; i < node.count(); ++i) {
    out->push_back(LeafEntryBuf{node.LeafKey(i), node.LeafRid(i),
                                node.LeafFlags(i)});
  }
  if (right != nullptr) *right = node.right_sibling();
  return Status::OK();
}
}  // namespace

Status BTree::FreeInnerLevels() {
  if (height_ <= 1) return Status::OK();
  PageId level_head = root_;
  while (true) {
    PageId next_head;
    bool is_leaf_level;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(level_head));
      BTreeNode node(guard.data());
      is_leaf_level = node.is_leaf();
      next_head = is_leaf_level ? kInvalidPageId : node.Child(0);
    }
    if (is_leaf_level) break;
    PageId cur = level_head;
    while (cur != kInvalidPageId) {
      PageId right;
      {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
        right = BTreeNode(guard.data()).right_sibling();
      }
      BULKDEL_RETURN_IF_ERROR(FreeNode(cur));
      cur = right;
    }
    level_head = next_head;
  }
  return Status::OK();
}

Status BTree::RebuildInnerLevels() {
  BULKDEL_ASSIGN_OR_RETURN(PageId leftmost, DescendToLeaf(KeyRid::Min(kMinKey)));
  BULKDEL_RETURN_IF_ERROR(FreeInnerLevels());

  std::vector<std::pair<KeyRid, PageId>> leaves;
  PageId cur = leftmost;
  while (cur != kInvalidPageId) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
    BTreeNode node(guard.data());
    KeyRid max_entry = node.count() > 0 ? node.LeafEntryAt(node.count() - 1)
                                        : KeyRid::Min(kMinKey);
    leaves.emplace_back(max_entry, cur);
    cur = node.right_sibling();
  }
  return BuildUpperLevels(std::move(leaves), 1.0);
}

Status BTree::CompactAndRebuild() {
  BULKDEL_ASSIGN_OR_RETURN(PageId leftmost, DescendToLeaf(KeyRid::Min(kMinKey)));
  BULKDEL_RETURN_IF_ERROR(FreeInnerLevels());

  // Collect the leaf chain.
  std::vector<PageId> pages;
  {
    PageId cur = leftmost;
    while (cur != kInvalidPageId) {
      pages.push_back(cur);
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(cur));
      cur = BTreeNode(guard.data()).right_sibling();
    }
  }

  // Shift all entries maximally to the left ("beyond base node delimiters"),
  // writing each page once.
  const uint16_t cap = leaf_capacity();
  size_t write_i = 0;
  uint16_t write_idx = 0;
  std::vector<LeafEntryBuf> buf;
  for (size_t read_i = 0; read_i < pages.size(); ++read_i) {
    BULKDEL_RETURN_IF_ERROR(LoadLeafEntries(pool_, pages[read_i], &buf,
                                            nullptr));
    for (const LeafEntryBuf& e : buf) {
      if (write_idx == cap) {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard wguard,
                                 pool_->FetchPage(pages[write_i]));
        BTreeNode wnode(wguard.data());
        wnode.set_count(cap);
        wguard.MarkDirty();
        ++write_i;
        write_idx = 0;
      }
      BULKDEL_ASSIGN_OR_RETURN(PageGuard wguard,
                               pool_->FetchPage(pages[write_i]));
      BTreeNode wnode(wguard.data());
      wnode.SetLeafEntry(write_idx, e.key, e.rid, e.flags);
      wguard.MarkDirty();
      ++write_idx;
    }
  }
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard wguard,
                             pool_->FetchPage(pages[write_i]));
    BTreeNode wnode(wguard.data());
    wnode.set_count(write_idx);
    wguard.MarkDirty();
  }
  // An exactly-full last page followed by leftovers, or a zero-entry tree,
  // leaves the tail page empty; keep at least one leaf.
  if (write_idx == 0 && write_i > 0) --write_i;

  // Terminate the chain at the last kept leaf and free the tail.
  {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard wguard,
                             pool_->FetchPage(pages[write_i]));
    BTreeNode wnode(wguard.data());
    wnode.set_right_sibling(kInvalidPageId);
    wguard.MarkDirty();
  }
  for (size_t i = write_i + 1; i < pages.size(); ++i) {
    BULKDEL_RETURN_IF_ERROR(FreeNode(pages[i]));
  }

  // Rebuild the inner levels over the kept leaves.
  std::vector<std::pair<KeyRid, PageId>> kept;
  kept.reserve(write_i + 1);
  for (size_t i = 0; i <= write_i; ++i) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(pages[i]));
    BTreeNode node(guard.data());
    KeyRid max_entry = node.count() > 0 ? node.LeafEntryAt(node.count() - 1)
                                        : KeyRid::Min(kMinKey);
    kept.emplace_back(max_entry, pages[i]);
  }
  return BuildUpperLevels(std::move(kept), 1.0);
}

Status BTree::IncrementalBaseNodeReorg() {
  if (height_ <= 1) return Status::OK();

  // The base nodes are the level-1 inner nodes; walk their sibling chain.
  PageId base = root_;
  for (int lvl = height_ - 1; lvl > 1; --lvl) {
    BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(base));
    base = BTreeNode(guard.data()).Child(0);
  }

  const uint16_t cap = leaf_capacity();
  std::vector<LeafEntryBuf> buf;
  while (base != kInvalidPageId) {
    PageId next_base;
    std::vector<PageId> children;
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(base));
      BTreeNode node(guard.data());
      next_base = node.right_sibling();
      for (uint16_t i = 0; i <= node.count(); ++i) {
        children.push_back(node.Child(i));
      }
    }

    // Compact this subtree's leaves in place (reorganization unit = the
    // base node's children, Fig. 6 of the paper).
    size_t write_i = 0;
    uint16_t write_idx = 0;
    for (size_t read_i = 0; read_i < children.size(); ++read_i) {
      BULKDEL_RETURN_IF_ERROR(
          LoadLeafEntries(pool_, children[read_i], &buf, nullptr));
      for (const LeafEntryBuf& e : buf) {
        if (write_idx == cap) {
          BULKDEL_ASSIGN_OR_RETURN(PageGuard wguard,
                                   pool_->FetchPage(children[write_i]));
          BTreeNode wnode(wguard.data());
          wnode.set_count(cap);
          wguard.MarkDirty();
          ++write_i;
          write_idx = 0;
        }
        BULKDEL_ASSIGN_OR_RETURN(PageGuard wguard,
                                 pool_->FetchPage(children[write_i]));
        BTreeNode wnode(wguard.data());
        wnode.SetLeafEntry(write_idx, e.key, e.rid, e.flags);
        wguard.MarkDirty();
        ++write_idx;
      }
    }
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard wguard,
                               pool_->FetchPage(children[write_i]));
      BTreeNode wnode(wguard.data());
      wnode.set_count(write_idx);
      wguard.MarkDirty();
    }
    if (write_idx == 0 && write_i > 0) --write_i;

    // Bridge the leaf chain over the freed tail and free it.
    if (write_i + 1 < children.size()) {
      PageId after;
      {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard guard,
                                 pool_->FetchPage(children.back()));
        after = BTreeNode(guard.data()).right_sibling();
      }
      {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard wguard,
                                 pool_->FetchPage(children[write_i]));
        BTreeNode wnode(wguard.data());
        wnode.set_right_sibling(after);
        wguard.MarkDirty();
      }
      if (after != kInvalidPageId) {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard aguard, pool_->FetchPage(after));
        BTreeNode anode(aguard.data());
        anode.set_left_sibling(children[write_i]);
        aguard.MarkDirty();
      }
      for (size_t i = write_i + 1; i < children.size(); ++i) {
        BULKDEL_RETURN_IF_ERROR(FreeNode(children[i]));
      }
    }

    // Rewrite the base node's child list and separators in place. The
    // subtree's key range only shrank, so ancestors stay valid.
    {
      BULKDEL_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPage(base));
      BTreeNode node(guard.data());
      node.set_count(0);
      node.SetChild(0, children[0]);
      for (size_t i = 1; i <= write_i; ++i) {
        BULKDEL_ASSIGN_OR_RETURN(PageGuard cguard,
                                 pool_->FetchPage(children[i - 1]));
        BTreeNode cnode(cguard.data());
        KeyRid sep = cnode.LeafEntryAt(cnode.count() - 1);
        cguard.Release();
        node.InnerInsertAt(static_cast<uint16_t>(i - 1), sep, children[i]);
      }
      guard.MarkDirty();
    }
    base = next_base;
  }
  return Status::OK();
}

}  // namespace bulkdel

#!/usr/bin/env python3
"""Append one BENCH_smoke.json entry from reduced-scale bench traces.

Usage:
  bench_smoke_summary.py --out=OUT_JSON --fig7=TRACE_JSONL [--fig9=TRACE_JSONL]
                         [--concurrency=BENCH_JSONL] [--predicate=BENCH_JSONL]
                         [--cascade=BENCH_JSONL]
                         [--server=LOADGEN_JSON]...
                         [--require-file-backend]
                         [--commit=SHA] [--date=YYYY-MM-DD]

Reads the per-run JSONL written by `bench_fig7_vary_deletes` /
`bench_fig9_vary_memory` with `--trace-out=...` (one BulkDeleteReport::ToJson
line per delete) and appends a single summary line to OUT_JSON — itself JSONL,
one entry per recorded run, so the perf trajectory of the reduced-scale smoke
benchmarks is `git log`-diffable. Per bench and strategy it keeps, in run
order (fig7: 5/10/15/20 % deletes; fig9: 2/4/6/8/10 MB):
  sim_minutes — simulated I/O time under the 2001 disk model (the paper's
                y-axis; the number that must not regress),
  wall_millis — host wall time (noisy across runners; trend only),
  io_reads / io_writes — simulated page transfer counts.

Reports from a file-backed run (BulkDeleteReport.backend == "file") are kept
as their own `<strategy>|file` series: sim_minutes must be bit-identical to
the sim series (same workload, same disk model), while wall_millis reflects
real pwrite/fsync I/O. --require-file-backend fails the run unless at least
one file-backed series is present, so CI cannot silently drop that leg.

--concurrency ingests the JSONL written by `bench_ablation_concurrency
--json-out=...` instead: per §3.1 protocol it records the updater ops/sec
sustained during the bulk delete (wall-clock based — trend only) and the
delete's simulated I/O time, plus the WAL group-commit ablation's
fsyncs-vs-acknowledged-ops counts when present.

--predicate ingests the JSONL written by `bench_ablation_predicate
--json-out=...`: simulated I/O and wall time of the first-class range plan
vs the same doomed set expanded into an IN-list, plus the range-advantage
ratio in page transfers. Ingestion *fails* unless every recorded run shows
the range plan at least 5x cheaper — the bench-smoke job must not record a
regression of the range path as a normal entry.

--cascade ingests the JSONL written by `bench_ablation_cascade
--json-out=...`: simulated I/O and wall time of the "forget user X"
multi-table cascade delete under the shared-sort FK planner vs the per-FK
re-derivation baseline vs a row-at-a-time loop, plus the shared-sort
advantage ratio in page transfers. Ingestion *fails* unless every recorded
run shows shared-sort at least 1.05x cheaper than per-FK-naive — the
bench-smoke job must not record a regression of the cascade planner as a
normal entry. (The bench binary itself gates at 1.10x; the looser ingest
bound only guards against stale/hand-edited traces.)

--server (repeatable, one file per backend leg) ingests the summary JSON
written by `bulkdel_loadgen --json-out=...`: per backend it records sustained
throughput and tail latency (p50/p99/p999, with the log2-bucket lower bound
of each quantile as p*_us_lo when the loadgen emitted it) for each op class
served by the network server, plus the durability and side-file counters
sampled over the run. Ingestion *fails* if any op class ran zero ops, is missing p999, or the
total throughput is absent — the CI server-loadtest job must not silently
record a loadgen run that didn't actually exercise the mix.

Exits non-zero if OUT_JSON would be left unchanged (empty/missing traces),
so the CI bench-smoke job cannot silently stop recording the trajectory.

The legacy positional form `bench_smoke_summary.py TRACE OUT [COMMIT] [DATE]`
still works and implies --fig7=TRACE.
"""

import json
import os
import sys


def summarize(trace_path):
    """Per-strategy run-ordered series from one --trace-out JSONL file."""
    series = {}
    with open(trace_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            report = json.loads(line)
            # Older traces predate the backend field: they were all sim runs.
            backend = report.get("backend", "sim")
            key = report["strategy"] if backend == "sim" else (
                report["strategy"] + "|" + backend)
            per = series.setdefault(
                key,
                {"sim_minutes": [], "wall_millis": [], "io_reads": [],
                 "io_writes": []})
            per["sim_minutes"].append(
                round(report["io"]["simulated_micros"] / 60e6, 3))
            per["wall_millis"].append(round(report["wall_micros"] / 1e3, 1))
            per["io_reads"].append(report["io"]["reads"])
            per["io_writes"].append(report["io"]["writes"])
    return series


def summarize_concurrency(bench_path):
    """Per-protocol updater/delete series from bench_ablation_concurrency
    --json-out JSONL (one line per bench invocation, in run order)."""
    series = {}
    with open(bench_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            run = json.loads(line)
            for protocol, r in sorted(run.get("protocols", {}).items()):
                per = series.setdefault(
                    protocol,
                    {"updaters": [], "updater_ops_per_sec": [],
                     "delete_wall_millis": [], "sim_minutes": []})
                per["updaters"].append(run.get("updaters"))
                per["updater_ops_per_sec"].append(r["updater_ops_per_sec"])
                per["delete_wall_millis"].append(r["delete_wall_ms"])
                per["sim_minutes"].append(round(r["sim_micros"] / 60e6, 3))
            for mode, r in sorted(run.get("wal_group_commit", {}).items()):
                per = series.setdefault(
                    "wal_group_commit|" + mode,
                    {"updater_ops": [], "wal_syncs": [], "wal_fsyncs": [],
                     "delete_wall_millis": []})
                per["updater_ops"].append(r["updater_ops"])
                per["wal_syncs"].append(r["wal_syncs"])
                per["wal_fsyncs"].append(r["wal_fsyncs"])
                per["delete_wall_millis"].append(r["delete_wall_ms"])
    return series


def summarize_predicate(bench_path):
    """Range-plan vs expanded-IN-list series from bench_ablation_predicate
    --json-out JSONL (one line per bench invocation, in run order). Returns
    (series, error): a run missing the advantage ratio — or recording one
    below 5x — must fail the job, not be recorded as a hollow entry."""
    series = {}
    with open(bench_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            run = json.loads(line)
            backend = run.get("backend", "sim")
            suffix = "" if backend == "sim" else "|" + backend
            if "ratio" not in run:
                return None, f"{bench_path}: no range-advantage ratio"
            if run["ratio"] < 5.0:
                return None, (f"{bench_path}: range plan only {run['ratio']}x"
                              " cheaper than the expanded IN-list (need 5x)")
            for plan in ("range", "expanded_in"):
                if plan not in run:
                    return None, f"{bench_path}: no {plan} record"
                r = run[plan]
                per = series.setdefault(
                    plan + suffix,
                    {"sim_minutes": [], "wall_millis": [], "io_reads": [],
                     "io_writes": []})
                per["sim_minutes"].append(round(r["sim_micros"] / 60e6, 3))
                per["wall_millis"].append(round(r["wall_micros"] / 1e3, 1))
                per["io_reads"].append(r["io_reads"])
                per["io_writes"].append(r["io_writes"])
            per = series.setdefault(
                "range_advantage" + suffix,
                {"ratio": [], "rows_deleted": []})
            per["ratio"].append(run["ratio"])
            per["rows_deleted"].append(run.get("rows_deleted"))
    return series, None


def summarize_cascade(bench_path):
    """Shared-sort vs per-FK-naive vs row-at-a-time series from
    bench_ablation_cascade --json-out JSONL (one line per bench invocation,
    in run order). Returns (series, error): a run missing the shared-sort
    advantage ratio — or recording one below 1.05x — must fail the job, not
    be recorded as a hollow entry."""
    series = {}
    with open(bench_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            run = json.loads(line)
            if "ratio" not in run:
                return None, f"{bench_path}: no shared-sort advantage ratio"
            if run["ratio"] < 1.05:
                return None, (f"{bench_path}: shared-sort only {run['ratio']}x"
                              " cheaper than per-FK-naive (need 1.05x)")
            for plan in ("shared", "naive", "row_at_a_time"):
                if plan not in run:
                    return None, f"{bench_path}: no {plan} record"
                r = run[plan]
                per = series.setdefault(
                    plan,
                    {"sim_minutes": [], "wall_millis": [], "io_reads": [],
                     "io_writes": []})
                per["sim_minutes"].append(round(r["sim_micros"] / 60e6, 3))
                per["wall_millis"].append(round(r["wall_micros"] / 1e3, 1))
                per["io_reads"].append(r["io_reads"])
                per["io_writes"].append(r["io_writes"])
            per = series.setdefault(
                "shared_sort_advantage",
                {"ratio": [], "users_deleted": [], "cascaded_rows": []})
            per["ratio"].append(run["ratio"])
            per["users_deleted"].append(run.get("users_deleted"))
            per["cascaded_rows"].append(run.get("cascaded_rows"))
    return series, None


def summarize_server(paths):
    """Per-backend series from bulkdel_loadgen --json-out files. Returns
    (series, error): error is a string when a run is unusable (missing tail
    quantiles or throughput), which must fail the job rather than record a
    hollow entry."""
    series = {}
    for path in paths:
        with open(path) as f:
            run = json.load(f)
        key = run.get("backend", "sim")
        if run.get("protocol") not in (None, "sidefile"):
            key += "|" + run["protocol"]
        if "total_ops_per_sec" not in run:
            return None, f"{path}: no total_ops_per_sec"
        if run.get("errors", 0):
            return None, f"{path}: {run['errors']} statement error(s)"
        per = series.setdefault(key, {})
        per.setdefault("clients", []).append(run.get("clients"))
        per.setdefault("elapsed_s", []).append(run.get("elapsed_s"))
        per.setdefault("total_ops_per_sec", []).append(
            run["total_ops_per_sec"])
        for op, stats in sorted(run.get("op_classes", {}).items()):
            if not stats.get("ops"):
                return None, f"{path}: op class {op} ran zero ops"
            for field in ("ops_per_sec", "p50_us", "p99_us", "p999_us"):
                if field not in stats:
                    return None, f"{path}: {op} missing {field}"
                per.setdefault(f"{op}_{field}", []).append(stats[field])
            # Log2-bucket lower bounds (the true quantile is in
            # (*_us_lo, *_us]); optional so pre-existing loadgen files
            # without them still ingest.
            for field in ("p50_us_lo", "p99_us_lo", "p999_us_lo"):
                if field in stats:
                    per.setdefault(f"{op}_{field}", []).append(stats[field])
        metrics = run.get("metrics", {})
        for counter in ("wal.fsyncs", "disk.syncs", "sidefile.appends",
                        "net.rejected"):
            if counter in metrics:
                per.setdefault(counter.replace(".", "_"), []).append(
                    metrics[counter])
    return series, None


def main() -> int:
    out_path = None
    concurrency_path = None
    predicate_path = None
    cascade_path = None
    server_paths = []
    traces = {}  # bench name -> path
    commit = "unknown"
    date = "unknown"
    require_file_backend = False
    positional = []
    for arg in sys.argv[1:]:
        if arg == "--require-file-backend":
            require_file_backend = True
        elif arg.startswith("--out="):
            out_path = arg[len("--out="):]
        elif arg.startswith("--fig7="):
            traces["fig7_vary_deletes"] = arg[len("--fig7="):]
        elif arg.startswith("--fig9="):
            traces["fig9_vary_memory"] = arg[len("--fig9="):]
        elif arg.startswith("--concurrency="):
            concurrency_path = arg[len("--concurrency="):]
        elif arg.startswith("--predicate="):
            predicate_path = arg[len("--predicate="):]
        elif arg.startswith("--cascade="):
            cascade_path = arg[len("--cascade="):]
        elif arg.startswith("--server="):
            server_paths.append(arg[len("--server="):])
        elif arg.startswith("--commit="):
            commit = arg[len("--commit="):]
        elif arg.startswith("--date="):
            date = arg[len("--date="):]
        elif arg.startswith("--"):
            print(f"unknown flag {arg}\n{__doc__}", file=sys.stderr)
            return 2
        else:
            positional.append(arg)
    if positional:  # legacy: TRACE OUT [COMMIT] [DATE]
        if len(positional) >= 2 and "fig7_vary_deletes" not in traces:
            traces["fig7_vary_deletes"] = positional[0]
            out_path = out_path or positional[1]
        if len(positional) > 2:
            commit = positional[2]
        if len(positional) > 3:
            date = positional[3]
    if out_path is None or (not traces and concurrency_path is None and
                            predicate_path is None and cascade_path is None and
                            not server_paths):
        print(__doc__, file=sys.stderr)
        return 2

    benches = {}
    for bench, path in sorted(traces.items()):
        if not os.path.exists(path):
            print(f"missing trace file {path}", file=sys.stderr)
            return 1
        series = summarize(path)
        if not series:
            print(f"no trace records in {path}", file=sys.stderr)
            return 1
        benches[bench] = series
    if concurrency_path is not None:
        if not os.path.exists(concurrency_path):
            print(f"missing bench file {concurrency_path}", file=sys.stderr)
            return 1
        series = summarize_concurrency(concurrency_path)
        if not series:
            print(f"no bench records in {concurrency_path}", file=sys.stderr)
            return 1
        benches["ablation_concurrency"] = series
    if predicate_path is not None:
        if not os.path.exists(predicate_path):
            print(f"missing bench file {predicate_path}", file=sys.stderr)
            return 1
        series, error = summarize_predicate(predicate_path)
        if error is not None:
            print(f"--predicate: {error}", file=sys.stderr)
            return 1
        if not series:
            print(f"no bench records in {predicate_path}", file=sys.stderr)
            return 1
        benches["ablation_predicate"] = series
    if cascade_path is not None:
        if not os.path.exists(cascade_path):
            print(f"missing bench file {cascade_path}", file=sys.stderr)
            return 1
        series, error = summarize_cascade(cascade_path)
        if error is not None:
            print(f"--cascade: {error}", file=sys.stderr)
            return 1
        if not series:
            print(f"no bench records in {cascade_path}", file=sys.stderr)
            return 1
        benches["ablation_cascade"] = series
    if server_paths:
        for path in server_paths:
            if not os.path.exists(path):
                print(f"missing loadgen file {path}", file=sys.stderr)
                return 1
        series, error = summarize_server(server_paths)
        if error is not None:
            print(f"--server: {error}", file=sys.stderr)
            return 1
        if not series:
            print("--server: no loadgen records", file=sys.stderr)
            return 1
        benches["server"] = series

    if require_file_backend:
        file_series = [
            key for series in benches.values() for key in series
            if key.endswith("|file")]
        if not file_series:
            print("--require-file-backend: no file-backed series in any "
                  "trace — the file-backend bench leg did not run",
                  file=sys.stderr)
            return 1
        for bench, series in benches.items():
            for key in series:
                if not key.endswith("|file"):
                    continue
                walls = series[key].get("wall_millis", [])
                if walls and all(w <= 0 for w in walls):
                    print(f"{bench}/{key}: file-backed run recorded no "
                          "wall time", file=sys.stderr)
                    return 1

    entry = {"date": date, "commit": commit, "benches": benches}
    size_before = os.path.getsize(out_path) if os.path.exists(out_path) else 0
    with open(out_path, "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    size_after = os.path.getsize(out_path)
    if size_after <= size_before:
        print(f"{out_path} unchanged — refusing to pass", file=sys.stderr)
        return 1
    print(f"appended {out_path}: {json.dumps(entry, sort_keys=True)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

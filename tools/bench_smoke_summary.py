#!/usr/bin/env python3
"""Append one BENCH_smoke.json entry from a bench_fig7 trace.

Usage: bench_smoke_summary.py TRACE_JSONL OUT_JSON [COMMIT] [DATE]

Reads the per-run JSONL written by `bench_fig7_vary_deletes --trace-out=...`
and appends a single summary line to OUT_JSON (itself JSONL: one entry per
recorded run, so the perf trajectory of the reduced-scale smoke benchmark is
`git log`-diffable). Per strategy it keeps the simulated minutes of every
delete fraction, in run order (5/10/15/20%).
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    trace_path, out_path = sys.argv[1], sys.argv[2]
    commit = sys.argv[3] if len(sys.argv) > 3 else "unknown"
    date = sys.argv[4] if len(sys.argv) > 4 else "unknown"

    series = {}
    with open(trace_path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            report = json.loads(line)
            minutes = report["io"]["simulated_micros"] / 60e6
            series.setdefault(report["strategy"], []).append(
                round(minutes, 3))

    if not series:
        print(f"no trace records in {trace_path}", file=sys.stderr)
        return 1

    entry = {
        "bench": "fig7_vary_deletes",
        "date": date,
        "commit": commit,
        "sim_minutes_by_strategy": series,
    }
    with open(out_path, "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"appended {out_path}: {json.dumps(entry, sort_keys=True)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

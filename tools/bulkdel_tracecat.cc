// bulkdel_tracecat: summarizes a Chrome trace-event JSON file produced by
// `--perfetto-out` (obs::TraceRecorder::ExportChromeTrace) without opening a
// UI. Prints, per docs/OBSERVABILITY.md:
//   - the critical path through the phase DAG, walked over the `parent`
//     links the PhaseScope spans carry,
//   - per-thread busy % (span time / trace wall time per lane),
//   - instant-event counts by name (pool evictions, read-ahead issues, ...),
//   - with --reports=FILE.jsonl, the top histogram tails aggregated over the
//     BulkDeleteReport::ToJson lines a bench wrote via --trace-out,
//   - with --slowlog=FILE.jsonl, the server's slow-query records (see
//     docs/OBSERVABILITY.md): one header per record and, for DELETEs, the
//     same critical-path summary as for full Perfetto traces, walked over
//     the phase spans embedded in the record's BulkDeleteReport.
//
// Usage: bulkdel_tracecat [TRACE.json] [--reports=FILE.jsonl]
//                         [--slowlog=FILE.jsonl] [--top=N]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace bulkdel {
namespace {

struct Span {
  std::string name;
  std::string cat;
  std::string parent;
  double ts = 0;   // micros
  double dur = 0;  // micros
  int64_t tid = 0;
};

struct TraceSummary {
  std::vector<Span> spans;
  std::map<int64_t, std::string> thread_names;
  std::map<std::string, int64_t> instant_counts;
  int64_t dropped_events = 0;
};

double NumberOr(const json::Value& v, const std::string& key) {
  return v.DoubleOr(key, 0.0);
}

Result<TraceSummary> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  BULKDEL_ASSIGN_OR_RETURN(json::Value root, json::Parse(buffer.str()));

  TraceSummary summary;
  if (const json::Value* other = root.Find("otherData")) {
    summary.dropped_events = other->IntOr("dropped_events");
  }
  const json::Value* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != json::Value::Kind::kArray) {
    return Status::InvalidArgument("no traceEvents array in " + path);
  }
  for (const json::Value& e : events->array) {
    std::string ph = e.StringOr("ph");
    if (ph == "M") {
      if (e.StringOr("name") == "thread_name") {
        if (const json::Value* args = e.Find("args")) {
          summary.thread_names[e.IntOr("tid")] = args->StringOr("name");
        }
      }
      continue;
    }
    if (ph == "i") {
      summary.instant_counts[e.StringOr("cat") + ":" + e.StringOr("name")]++;
      continue;
    }
    if (ph != "X") continue;
    Span span;
    span.name = e.StringOr("name");
    span.cat = e.StringOr("cat");
    span.ts = NumberOr(e, "ts");
    span.dur = NumberOr(e, "dur");
    span.tid = e.IntOr("tid");
    if (const json::Value* args = e.Find("args")) {
      span.parent = args->StringOr("parent");
    }
    summary.spans.push_back(std::move(span));
  }
  return summary;
}

/// Critical path over the phase spans: start from the phase that finishes
/// last and follow `parent` labels back to a root. Phases repeat across bench
/// cells, so each hop picks the latest same-named span that begins before the
/// current hop ends (its actual upstream in that statement).
void PrintCriticalPath(const TraceSummary& summary) {
  std::vector<const Span*> phases;
  for (const Span& s : summary.spans) {
    if (s.cat == "phase") phases.push_back(&s);
  }
  if (phases.empty()) {
    std::printf("critical path: no phase spans (trace_spans off?)\n");
    return;
  }
  const Span* cur = *std::max_element(
      phases.begin(), phases.end(),
      [](const Span* a, const Span* b) { return a->ts + a->dur < b->ts + b->dur; });
  std::vector<const Span*> path;
  while (cur != nullptr) {
    path.push_back(cur);
    const Span* next = nullptr;
    if (!cur->parent.empty()) {
      for (const Span* candidate : phases) {
        if (candidate->name != cur->parent) continue;
        if (candidate->ts > cur->ts + cur->dur) continue;
        if (next == nullptr || candidate->ts > next->ts) next = candidate;
      }
    }
    cur = next;
    if (path.size() > phases.size()) break;  // defensive: parent cycle
  }
  std::reverse(path.begin(), path.end());
  double total = 0;
  for (const Span* s : path) total += s->dur;
  std::printf("critical path (%zu phases, %.3f ms span time):\n", path.size(),
              total / 1000.0);
  for (const Span* s : path) {
    std::printf("  %-24s %10.3f ms  t%lld [%.3f..%.3f ms]\n", s->name.c_str(),
                s->dur / 1000.0, static_cast<long long>(s->tid),
                s->ts / 1000.0, (s->ts + s->dur) / 1000.0);
  }
}

void PrintThreadBusy(const TraceSummary& summary) {
  if (summary.spans.empty()) return;
  double t0 = summary.spans.front().ts, t1 = 0;
  std::map<int64_t, double> busy;
  for (const Span& s : summary.spans) {
    t0 = std::min(t0, s.ts);
    t1 = std::max(t1, s.ts + s.dur);
    busy[s.tid] += s.dur;
  }
  double wall = t1 - t0;
  if (wall <= 0) return;
  std::printf("\nthread busy (trace wall %.3f ms):\n", wall / 1000.0);
  for (const auto& [tid, micros] : busy) {
    auto it = summary.thread_names.find(tid);
    std::string name =
        it != summary.thread_names.end() ? it->second : "t" + std::to_string(tid);
    std::printf("  %-12s %6.1f%%  (%.3f ms in spans)\n", name.c_str(),
                100.0 * micros / wall, micros / 1000.0);
  }
}

void PrintInstants(const TraceSummary& summary, size_t top) {
  if (summary.instant_counts.empty()) return;
  std::vector<std::pair<std::string, int64_t>> counts(
      summary.instant_counts.begin(), summary.instant_counts.end());
  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("\ninstants:\n");
  for (size_t i = 0; i < counts.size() && i < top; ++i) {
    std::printf("  %-32s %lld\n", counts[i].first.c_str(),
                static_cast<long long>(counts[i].second));
  }
  if (counts.size() > top) {
    std::printf("  ... %zu more kinds\n", counts.size() - top);
  }
}

/// Aggregates report.metrics histograms across every JSONL line and prints
/// the slowest tails first (the "where did the time go" list).
int PrintHistogramTails(const std::string& path, size_t top) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::map<std::string, obs::HistogramSnapshot> merged;
  std::string line;
  size_t reports = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Result<BulkDeleteReport> report = BulkDeleteReport::FromJson(line);
    if (!report.ok()) {
      std::fprintf(stderr, "skipping unparsable report line: %s\n",
                   report.status().ToString().c_str());
      continue;
    }
    ++reports;
    for (const obs::HistogramSnapshot& h : report->metrics.histograms) {
      obs::HistogramSnapshot& m = merged[h.name];
      m.name = h.name;
      m.count += h.count;
      m.sum += h.sum;
      if (m.buckets.size() < h.buckets.size()) {
        m.buckets.resize(h.buckets.size(), 0);
      }
      for (size_t b = 0; b < h.buckets.size(); ++b) m.buckets[b] += h.buckets[b];
    }
  }
  std::vector<const obs::HistogramSnapshot*> order;
  for (const auto& [name, h] : merged) {
    if (h.count > 0) order.push_back(&h);
  }
  std::sort(order.begin(), order.end(),
            [](const obs::HistogramSnapshot* a, const obs::HistogramSnapshot* b) {
              return a->ApproxQuantile(0.99) > b->ApproxQuantile(0.99);
            });
  std::printf("\nhistogram tails (%zu reports from %s):\n", reports,
              path.c_str());
  std::printf("  %-24s %10s %12s %12s %12s %12s\n", "name", "count", "mean",
              "p50", "p90", "p99");
  for (size_t i = 0; i < order.size() && i < top; ++i) {
    const obs::HistogramSnapshot& h = *order[i];
    std::printf("  %-24s %10lld %12.1f %12lld %12lld %12lld\n", h.name.c_str(),
                static_cast<long long>(h.count),
                static_cast<double>(h.sum) / static_cast<double>(h.count),
                static_cast<long long>(h.ApproxQuantile(0.5)),
                static_cast<long long>(h.ApproxQuantile(0.9)),
                static_cast<long long>(h.ApproxQuantile(0.99)));
  }
  if (order.empty()) {
    std::printf("  (no populated histograms — run with --perfetto-out to "
                "enable latency metrics)\n");
  }
  return 0;
}

/// One slow-query JSONL record per line: header with attribution, then the
/// critical path over the embedded report's phase spans (DELETEs). The
/// record format is produced by the SQL layer's slow-query capture.
int PrintSlowLog(const std::string& path, size_t top) {
  (void)top;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::string line;
  size_t records = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Result<json::Value> parsed = json::Parse(line);
    if (!parsed.ok()) {
      std::fprintf(stderr, "skipping unparsable slow-query line: %s\n",
                   parsed.status().ToString().c_str());
      continue;
    }
    const json::Value& rec = *parsed;
    ++records;
    const json::Value* ok = rec.Find("ok");
    bool succeeded = ok == nullptr || ok->boolean;
    std::printf("%sslow query #%lld  session %lld  %.3f ms (threshold %.3f "
                "ms)  %s\n",
                records > 1 ? "\n" : "",
                static_cast<long long>(rec.IntOr("statement_id")),
                static_cast<long long>(rec.IntOr("session")),
                static_cast<double>(rec.IntOr("elapsed_ns")) / 1e6,
                static_cast<double>(rec.IntOr("threshold_ns")) / 1e6,
                succeeded ? "ok" : "error");
    std::string statement = rec.StringOr("statement");
    std::printf("  %s\n", statement.substr(0, 160).c_str());
    if (!succeeded) {
      std::printf("  error: %s\n", rec.StringOr("error").c_str());
    }
    const json::Value* report = rec.Find("report");
    const json::Value* phases =
        report != nullptr ? report->Find("phases") : nullptr;
    if (phases == nullptr || phases->kind != json::Value::Kind::kArray) {
      std::printf("  (no phase spans — not a DELETE)\n");
      continue;
    }
    TraceSummary summary;
    for (const json::Value& pv : phases->array) {
      Span span;
      span.name = pv.StringOr("name");
      span.cat = "phase";
      span.parent = pv.StringOr("parent");
      span.ts = static_cast<double>(pv.IntOr("begin_micros"));
      span.dur = static_cast<double>(pv.IntOr("end_micros") -
                                     pv.IntOr("begin_micros"));
      span.tid = pv.IntOr("thread_id");
      summary.spans.push_back(std::move(span));
    }
    PrintCriticalPath(summary);
  }
  std::printf("%s%zu slow-query record(s) in %s\n", records > 0 ? "\n" : "",
              records, path.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  std::string trace_path;
  std::string reports_path;
  std::string slowlog_path;
  size_t top = 12;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--reports=", 10) == 0) {
      reports_path = arg + 10;
    } else if (std::strncmp(arg, "--slowlog=", 10) == 0) {
      slowlog_path = arg + 10;
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      top = std::strtoull(arg + 6, nullptr, 10);
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: bulkdel_tracecat [TRACE.json] [--reports=FILE.jsonl] "
          "[--slowlog=FILE.jsonl] [--top=N]\n"
          "TRACE.json: Chrome trace from a bench --perfetto-out=FILE run\n"
          "--reports:  BulkDeleteReport JSONL from --trace-out=FILE, for "
          "histogram tails\n"
          "--slowlog:  server slow-query JSONL (--slow-query-ns capture); "
          "prints the critical path per record\n");
      return 0;
    } else if (arg[0] != '-') {
      trace_path = arg;
    }
  }
  if (trace_path.empty() && reports_path.empty() && slowlog_path.empty()) {
    std::fprintf(stderr,
                 "usage: bulkdel_tracecat [TRACE.json] [--reports=FILE.jsonl] "
                 "[--slowlog=FILE.jsonl]\n");
    return 1;
  }
  if (!trace_path.empty()) {
    Result<TraceSummary> summary = LoadTrace(trace_path);
    if (!summary.ok()) {
      std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %zu spans, %zu instant kinds, %lld dropped\n",
                trace_path.c_str(), summary->spans.size(),
                summary->instant_counts.size(),
                static_cast<long long>(summary->dropped_events));
    PrintCriticalPath(*summary);
    PrintThreadBusy(*summary);
    PrintInstants(*summary, top);
  }
  if (!slowlog_path.empty()) {
    if (!trace_path.empty()) std::printf("\n");
    int rc = PrintSlowLog(slowlog_path, top);
    if (rc != 0) return rc;
  }
  if (!reports_path.empty()) {
    return PrintHistogramTails(reports_path, top);
  }
  return 0;
}

}  // namespace
}  // namespace bulkdel

int main(int argc, char** argv) { return bulkdel::Run(argc, argv); }

// Sustained mixed-workload load generator for the src/net SQL server
// (docs/SERVER.md).
//
// Spawns an in-process Database + net::Server on an ephemeral loopback port
// (or connects to an already-running server with --connect=HOST:PORT), then
// drives it from N client threads over real sockets. Each client owns a
// disjoint key range and replays a seeded mix of
//   INSERT INTO R VALUES (k, k%997, k%101)        -- "insert"
//   SELECT COUNT(*) FROM R WHERE A BETWEEN k AND k -- "point_read"
//   DELETE FROM R WHERE A IN (k1, ..., kB)         -- "bulk_delete"
//   DELETE FROM R WHERE A BETWEEN k1 AND kB        -- "range_delete"
// recording per-class latency histograms (p50/p99/p999 at log2-bucket
// granularity) and sustained throughput. Bulk deletes ride the §3.1
// concurrent-DML machinery: with --protocol=sidefile the other clients'
// inserts land in side-files while the delete holds indices off-line.
//
//   bulkdel_loadgen --clients=4 --seconds=10 --json-out=load.json
//   bulkdel_loadgen --backend=file --db-dir=/dev/shm/loadgen --seconds=60
//
// Exit status: 0 iff every acknowledged statement succeeded, the final row
// count equals preload + inserts - deletes, and (spawn mode) the database
// passes VerifyIntegrity().

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/sql.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/json.h"

namespace {

using bulkdel::ConcurrencyProtocol;
using bulkdel::Database;
using bulkdel::DatabaseOptions;
using bulkdel::MonotonicNanos;
using bulkdel::Result;
using bulkdel::Status;
using bulkdel::StorageBackend;
using bulkdel::net::Client;
using bulkdel::net::Server;
using bulkdel::net::ServerOptions;

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --clients=N          client threads (default 4)\n"
      "  --seconds=S          run duration (default 10; 0 = use --ops)\n"
      "  --ops=N              per-client op cap (0 = time-bounded)\n"
      "  --mix=I:R:D[:G]      insert:point_read:bulk_delete:range_delete\n"
      "                       weights (default 8:8:1:1)\n"
      "  --bulk-batch=N       keys per bulk/range delete (default 64)\n"
      "  --preload=N          rows loaded before the clock starts (20000)\n"
      "  --seed=N             workload seed (default 1)\n"
      "  --backend=sim|file   durability backend (default sim)\n"
      "  --db-dir=PATH        file backend directory\n"
      "  --protocol=none|sidefile|direct   §3.1 updater protocol (sidefile)\n"
      "  --wal-group-commit=on|off         (default on)\n"
      "  --memory=BYTES       buffer-pool budget (default 8 MiB)\n"
      "  --max-sessions=N     server admission bound (default clients+4)\n"
      "  --json-out=PATH      write the machine-readable summary here\n"
      "  --server-log=PATH    append the server's session log here\n"
      "  --connect=HOST:PORT  drive an external server instead of spawning\n"
      "  --metrics-port=P     expose GET /metrics on 127.0.0.1:P during the\n"
      "                       run (0 = ephemeral; default off; spawn only)\n"
      "  --trace-spans=on|off enable the span recorder so *_ns phase\n"
      "                       histograms (bp.fetch_ns, ...) populate (off)\n"
      "  --slow-query-ns=N    statements slower than N ns land in the\n"
      "                       slow-query JSONL (0 = off; spawn only)\n"
      "  --slow-query-log=P   slow-query JSONL path (with --slow-query-ns)\n"
      "  --probe-ms=N         every N ms an extra session SELECTs\n"
      "                       sys.statements and records what it saw (off)\n",
      argv0);
  return 2;
}

/// One op class's merged latency distribution. Latencies are client-observed
/// round-trip times; quantiles are log2-bucket upper bounds (see
/// obs::Histogram), so p999=4095us means "in (2047, 4095]".
struct OpStats {
  bulkdel::obs::HistogramSnapshot latency_ns;
  int64_t max_ns = 0;
  int64_t errors = 0;

  void Merge(const bulkdel::obs::Histogram& h, int64_t max, int64_t errs) {
    latency_ns.count += h.count();
    latency_ns.sum += h.sum();
    if (latency_ns.buckets.size() <
        static_cast<size_t>(bulkdel::obs::Histogram::kBuckets)) {
      latency_ns.buckets.resize(bulkdel::obs::Histogram::kBuckets, 0);
    }
    for (int b = 0; b < bulkdel::obs::Histogram::kBuckets; ++b) {
      latency_ns.buckets[static_cast<size_t>(b)] += h.bucket(b);
    }
    max_ns = std::max(max_ns, max);
    errors += errs;
  }
};

struct ClientState {
  std::thread thread;
  bulkdel::obs::Histogram insert_ns, read_ns, delete_ns, range_ns;
  int64_t insert_max = 0, read_max = 0, delete_max = 0, range_max = 0;
  int64_t inserts = 0, reads = 0, deletes = 0;  ///< acknowledged ops
  int64_t range_deletes = 0;
  int64_t rows_deleted = 0;
  int64_t errors = 0;
  std::string first_error;
};

struct Config {
  int clients = 4;
  double seconds = 10.0;
  int64_t ops = 0;
  int64_t mix_insert = 8, mix_read = 8, mix_delete = 1, mix_range = 1;
  int bulk_batch = 64;
  int64_t preload = 20000;
  uint64_t seed = 1;
  std::string backend = "sim";
  std::string db_dir;
  std::string protocol = "sidefile";
  bool wal_group_commit = true;
  size_t memory = 8u << 20;
  int max_sessions = 0;  // 0 = clients + 4
  std::string json_out;
  std::string server_log;
  std::string connect_host;
  uint16_t connect_port = 0;
  int metrics_port = -1;  // -1 = no /metrics endpoint, 0 = ephemeral
  bool trace_spans = false;
  int64_t slow_query_ns = 0;
  std::string slow_query_log;
  int probe_ms = 0;  // 0 = no sys.statements probe session
};

std::string InsertStatement(int64_t key) {
  return "INSERT INTO R VALUES (" + std::to_string(key) + ", " +
         std::to_string(key % 997) + ", " + std::to_string(key % 101) + ")";
}

void RunClient(const Config& cfg, const std::string& host, uint16_t port,
               int tid, int64_t deadline_ns, std::deque<int64_t> live,
               ClientState* state) {
  Result<Client> conn = Client::Connect(host, port);
  if (!conn.ok()) {
    state->errors = 1;
    state->first_error = "connect: " + conn.status().ToString();
    return;
  }
  Client client = std::move(*conn);
  std::mt19937_64 rng(cfg.seed * 1000003u + static_cast<uint64_t>(tid));
  // Client tid owns keys [base, base + 2^40): disjoint from the preload
  // range and every other client, so a delete always hits its own rows.
  int64_t next_key = (static_cast<int64_t>(tid) + 1) << 40;
  const int64_t mix_total =
      cfg.mix_insert + cfg.mix_read + cfg.mix_delete + cfg.mix_range;
  int64_t ops_done = 0;
  while ((cfg.ops == 0 || ops_done < cfg.ops) &&
         (deadline_ns == 0 || MonotonicNanos() < deadline_ns)) {
    int64_t draw = static_cast<int64_t>(rng() % mix_total);
    // Any delete needs a backlog of this client's own rows; fall back to
    // an insert until the backlog exists (self-balancing steady state).
    bool backlog = live.size() >= static_cast<size_t>(2 * cfg.bulk_batch);
    bool want_range =
        backlog && draw >= cfg.mix_insert + cfg.mix_read + cfg.mix_delete;
    bool want_delete = !want_range && backlog &&
                       draw >= cfg.mix_insert + cfg.mix_read;
    bool want_read = !want_range && !want_delete && draw >= cfg.mix_insert &&
                     !live.empty();
    size_t batch = static_cast<size_t>(cfg.bulk_batch);
    // The oldest `batch` keys form one contiguous block exactly when the
    // window does not straddle the preload-block/own-space gap; a BETWEEN
    // over a non-contiguous window would doom rows this client still counts
    // as live, so fall back to the IN-list shape for that window.
    if (want_range && live[batch - 1] - live[0] !=
                          static_cast<int64_t>(batch) - 1) {
      want_range = false;
      want_delete = true;
    }
    std::string statement;
    if (want_range) {
      statement = "DELETE FROM R WHERE A BETWEEN " +
                  std::to_string(live[0]) + " AND " +
                  std::to_string(live[batch - 1]);
    } else if (want_delete) {
      statement = "DELETE FROM R WHERE A IN (";
      for (int i = 0; i < cfg.bulk_batch; ++i) {
        if (i > 0) statement += ", ";
        statement += std::to_string(live[static_cast<size_t>(i)]);
      }
      statement += ")";
    } else if (want_read) {
      int64_t key = live[rng() % live.size()];
      statement = "SELECT COUNT(*) FROM R WHERE A BETWEEN " +
                  std::to_string(key) + " AND " + std::to_string(key);
    } else {
      statement = InsertStatement(next_key);
    }
    int64_t begin = MonotonicNanos();
    Result<std::string> reply = client.Execute(statement);
    int64_t ns = MonotonicNanos() - begin;
    ++ops_done;
    if (!reply.ok()) {
      ++state->errors;
      if (state->first_error.empty()) {
        state->first_error = reply.status().ToString() + " [" +
                             statement.substr(0, 80) + "]";
      }
      if (!client.connected()) break;  // socket-level failure: stop
      continue;
    }
    if (want_range) {
      state->range_ns.Observe(ns);
      state->range_max = std::max(state->range_max, ns);
      ++state->range_deletes;
      state->rows_deleted += cfg.bulk_batch;
      live.erase(live.begin(), live.begin() + cfg.bulk_batch);
    } else if (want_delete) {
      state->delete_ns.Observe(ns);
      state->delete_max = std::max(state->delete_max, ns);
      ++state->deletes;
      state->rows_deleted += cfg.bulk_batch;
      live.erase(live.begin(), live.begin() + cfg.bulk_batch);
    } else if (want_read) {
      state->read_ns.Observe(ns);
      state->read_max = std::max(state->read_max, ns);
      ++state->reads;
    } else {
      state->insert_ns.Observe(ns);
      state->insert_max = std::max(state->insert_max, ns);
      ++state->inserts;
      live.push_back(next_key++);
    }
  }
}

/// What the sys.statements probe session observed during the run. The probe
/// is an ordinary client: it proves the observability plane answers over the
/// wire while the workload races, not just in-process.
struct ProbeStats {
  int64_t scrapes = 0;   ///< successful SELECT * FROM sys.statements replies
  int64_t errors = 0;
  bool saw_inflight_delete = false;  ///< a DELETE row with state "run"
  std::string phase_seen;            ///< its phase column, e.g. "delete_index"
};

void RunProbe(const std::string& host, uint16_t port, int interval_ms,
              const std::atomic<bool>* stop, ProbeStats* stats) {
  Result<Client> conn = Client::Connect(host, port);
  if (!conn.ok()) {
    stats->errors = 1;
    return;
  }
  Client client = std::move(*conn);
  while (!stop->load(std::memory_order_acquire)) {
    Result<std::string> reply = client.Execute("SELECT * FROM sys.statements");
    if (!reply.ok()) {
      ++stats->errors;
      if (!client.connected()) break;
    } else {
      ++stats->scrapes;
      // Rows: id session state phase elapsed_us rows d_wal d_phases stmt...
      std::istringstream lines(*reply);
      std::string line;
      std::getline(lines, line);  // header
      while (std::getline(lines, line)) {
        std::istringstream cols(line);
        std::string id, session, state, phase;
        cols >> id >> session >> state >> phase;
        if (state == "run" && line.find("DELETE") != std::string::npos) {
          stats->saw_inflight_delete = true;
          if (phase != "-") stats->phase_seen = phase;
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  client.Close();
}

void AppendOpJson(std::string* out, const char* name, const OpStats& s,
                  double elapsed_s) {
  *out += "\"";
  *out += name;
  *out += "\": {\"ops\": " + std::to_string(s.latency_ns.count);
  double rate = elapsed_s > 0
                    ? static_cast<double>(s.latency_ns.count) / elapsed_s
                    : 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", rate);
  *out += std::string(", \"ops_per_sec\": ") + buf;
  // Each quantile is a log2-bucket: *_us is the bucket's inclusive upper
  // bound, *_us_lo its exclusive lower bound, so the true quantile lies in
  // (*_us_lo, *_us]. Reporting only the upper bound overstates latency by up
  // to 2x at the tail — consumers that care about quantization keep both.
  *out += ", \"p50_us\": " +
          std::to_string(s.latency_ns.ApproxQuantile(0.5) / 1000);
  *out += ", \"p50_us_lo\": " +
          std::to_string(s.latency_ns.ApproxQuantileLo(0.5) / 1000);
  *out += ", \"p99_us\": " +
          std::to_string(s.latency_ns.ApproxQuantile(0.99) / 1000);
  *out += ", \"p99_us_lo\": " +
          std::to_string(s.latency_ns.ApproxQuantileLo(0.99) / 1000);
  *out += ", \"p999_us\": " +
          std::to_string(s.latency_ns.ApproxQuantile(0.999) / 1000);
  *out += ", \"p999_us_lo\": " +
          std::to_string(s.latency_ns.ApproxQuantileLo(0.999) / 1000);
  *out += ", \"max_us\": " + std::to_string(s.max_ns / 1000);
  *out += ", \"errors\": " + std::to_string(s.errors) + "}";
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "clients", &v)) {
      cfg.clients = std::stoi(v);
    } else if (ParseFlag(argv[i], "seconds", &v)) {
      cfg.seconds = std::stod(v);
    } else if (ParseFlag(argv[i], "ops", &v)) {
      cfg.ops = std::stoll(v);
    } else if (ParseFlag(argv[i], "mix", &v)) {
      std::vector<int64_t> weights;
      size_t pos = 0;
      while (pos <= v.size()) {
        size_t colon = v.find(':', pos);
        if (colon == std::string::npos) colon = v.size();
        weights.push_back(std::stoll(v.substr(pos, colon - pos)));
        pos = colon + 1;
      }
      if (weights.size() < 3 || weights.size() > 4) return Usage(argv[0]);
      cfg.mix_insert = weights[0];
      cfg.mix_read = weights[1];
      cfg.mix_delete = weights[2];
      // Three-part mixes predate the range class; they keep its default
      // weight so the op class still exercises the range-plan path.
      if (weights.size() == 4) cfg.mix_range = weights[3];
    } else if (ParseFlag(argv[i], "bulk-batch", &v)) {
      cfg.bulk_batch = std::stoi(v);
    } else if (ParseFlag(argv[i], "preload", &v)) {
      cfg.preload = std::stoll(v);
    } else if (ParseFlag(argv[i], "seed", &v)) {
      cfg.seed = std::stoull(v);
    } else if (ParseFlag(argv[i], "backend", &v)) {
      cfg.backend = v;
    } else if (ParseFlag(argv[i], "db-dir", &v)) {
      cfg.db_dir = v;
    } else if (ParseFlag(argv[i], "protocol", &v)) {
      cfg.protocol = v;
    } else if (ParseFlag(argv[i], "wal-group-commit", &v)) {
      cfg.wal_group_commit = v != "off";
    } else if (ParseFlag(argv[i], "memory", &v)) {
      cfg.memory = static_cast<size_t>(std::stoull(v));
    } else if (ParseFlag(argv[i], "max-sessions", &v)) {
      cfg.max_sessions = std::stoi(v);
    } else if (ParseFlag(argv[i], "json-out", &v)) {
      cfg.json_out = v;
    } else if (ParseFlag(argv[i], "server-log", &v)) {
      cfg.server_log = v;
    } else if (ParseFlag(argv[i], "connect", &v)) {
      size_t colon = v.rfind(':');
      if (colon == std::string::npos) return Usage(argv[0]);
      cfg.connect_host = v.substr(0, colon);
      cfg.connect_port = static_cast<uint16_t>(std::stoi(v.substr(colon + 1)));
    } else if (ParseFlag(argv[i], "metrics-port", &v)) {
      cfg.metrics_port = std::stoi(v);
    } else if (ParseFlag(argv[i], "trace-spans", &v)) {
      cfg.trace_spans = v != "off";
    } else if (ParseFlag(argv[i], "slow-query-ns", &v)) {
      cfg.slow_query_ns = std::stoll(v);
    } else if (ParseFlag(argv[i], "slow-query-log", &v)) {
      cfg.slow_query_log = v;
    } else if (ParseFlag(argv[i], "probe-ms", &v)) {
      cfg.probe_ms = std::stoi(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (cfg.clients < 1 || cfg.bulk_batch < 1 || cfg.mix_insert < 0 ||
      cfg.mix_read < 0 || cfg.mix_delete < 0 || cfg.mix_range < 0 ||
      (cfg.mix_insert + cfg.mix_read + cfg.mix_delete + cfg.mix_range) <=
          0) {
    return Usage(argv[0]);
  }
  if (cfg.backend == "file" && cfg.db_dir.empty() &&
      cfg.connect_host.empty()) {
    std::fprintf(stderr, "--backend=file needs --db-dir=PATH\n");
    return 2;
  }

  // -- Spawn (or connect) ----------------------------------------------------
  std::unique_ptr<Database> db;
  std::unique_ptr<Server> server;
  std::ofstream server_log;
  std::mutex log_mu;
  std::string host = cfg.connect_host;
  uint16_t port = cfg.connect_port;
  const bool spawn = cfg.connect_host.empty();
  if (spawn) {
    DatabaseOptions options;
    options.memory_budget_bytes = cfg.memory;
    options.enable_recovery_log = true;
    options.wal_group_commit = cfg.wal_group_commit;
    // The *_ns phase histograms (bp.fetch_ns, ...) only populate while the
    // span recorder runs; CI's /metrics gate needs them live.
    options.trace_spans = cfg.trace_spans;
    if (cfg.protocol == "sidefile") {
      options.concurrency = ConcurrencyProtocol::kSideFile;
    } else if (cfg.protocol == "direct") {
      options.concurrency = ConcurrencyProtocol::kDirectPropagation;
    } else if (cfg.protocol != "none") {
      std::fprintf(stderr, "unknown --protocol=%s\n", cfg.protocol.c_str());
      return 2;
    }
    if (cfg.backend == "file") {
      options.backend = StorageBackend::kFile;
      options.path = cfg.db_dir;
    } else if (cfg.backend != "sim") {
      std::fprintf(stderr, "unknown --backend=%s\n", cfg.backend.c_str());
      return 2;
    }
    Result<std::unique_ptr<Database>> opened = Database::Create(options);
    if (!opened.ok()) {
      std::fprintf(stderr, "Database::Create: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    db = std::move(*opened);
    ServerOptions sopts;
    sopts.max_sessions =
        cfg.max_sessions > 0 ? cfg.max_sessions : cfg.clients + 4;
    sopts.metrics_port = cfg.metrics_port;
    sopts.slow_query_ns = cfg.slow_query_ns;
    sopts.slow_query_log = cfg.slow_query_log;
    if (!cfg.server_log.empty()) {
      server_log.open(cfg.server_log, std::ios::app);
      sopts.logger = [&server_log, &log_mu](const std::string& line) {
        std::lock_guard<std::mutex> lock(log_mu);
        server_log << line << "\n";
        server_log.flush();
      };
    }
    Result<std::unique_ptr<Server>> started =
        Server::Start(db.get(), std::move(sopts));
    if (!started.ok()) {
      std::fprintf(stderr, "Server::Start: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    server = std::move(*started);
    host = "127.0.0.1";
    port = server->port();
    if (server->metrics_port() != 0) {
      // Announce early (and on stderr, away from the JSON summary) so a
      // scraper started alongside the run can find the endpoint.
      std::fprintf(stderr, "metrics endpoint: http://%s:%u/metrics\n",
                   host.c_str(), server->metrics_port());
    }
  }

  // -- Schema + preload (through the socket, like any client) ----------------
  Result<Client> boot = Client::Connect(host, port);
  if (!boot.ok()) {
    std::fprintf(stderr, "bootstrap connect: %s\n",
                 boot.status().ToString().c_str());
    return 1;
  }
  for (const char* ddl : {"CREATE TABLE R (A INT, B INT, C INT)",
                          "CREATE UNIQUE INDEX ON R (A)",
                          "CREATE INDEX ON R (B)", "CREATE INDEX ON R (C)"}) {
    Result<std::string> r = boot->Execute(ddl);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", ddl, r.status().ToString().c_str());
      return 1;
    }
  }
  for (int64_t k = 1; k <= cfg.preload; ++k) {
    Result<std::string> r = boot->Execute(InsertStatement(k));
    if (!r.ok()) {
      std::fprintf(stderr, "preload: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }

  // Metrics baseline after preload so the deltas cover only the timed run.
  bulkdel::obs::MetricsSnapshot before;
  if (spawn) before = db->metrics().Snapshot();

  // -- Timed run -------------------------------------------------------------
  // Preloaded keys are dealt out as one contiguous block per client so
  // deletes fire from the first seconds of the run — and so the oldest keys
  // of each backlog form a dense range a BETWEEN delete can cover exactly
  // (round-robin dealing would interleave the clients' key spaces and every
  // range window would fall back to the IN-list shape).
  std::vector<std::deque<int64_t>> initial(
      static_cast<size_t>(cfg.clients));
  int64_t block = cfg.preload / cfg.clients;
  for (int64_t k = 1; k <= cfg.preload; ++k) {
    size_t owner = block > 0 ? static_cast<size_t>((k - 1) / block)
                             : static_cast<size_t>(cfg.clients) - 1;
    if (owner >= static_cast<size_t>(cfg.clients)) {
      owner = static_cast<size_t>(cfg.clients) - 1;  // remainder to the last
    }
    initial[owner].push_back(k);
  }
  int64_t start_ns = MonotonicNanos();
  int64_t deadline_ns =
      cfg.seconds > 0 ? start_ns + static_cast<int64_t>(cfg.seconds * 1e9)
                      : 0;
  std::vector<ClientState> clients(static_cast<size_t>(cfg.clients));
  ProbeStats probe;
  std::atomic<bool> probe_stop{false};
  std::thread probe_thread;
  if (cfg.probe_ms > 0) {
    probe_thread = std::thread([&cfg, &host, port, &probe_stop, &probe] {
      RunProbe(host, port, cfg.probe_ms, &probe_stop, &probe);
    });
  }
  for (int t = 0; t < cfg.clients; ++t) {
    ClientState* state = &clients[static_cast<size_t>(t)];
    std::deque<int64_t> live = std::move(initial[static_cast<size_t>(t)]);
    clients[static_cast<size_t>(t)].thread =
        std::thread([&cfg, &host, port, t, deadline_ns, state,
                     live = std::move(live)]() mutable {
          RunClient(cfg, host, port, t, deadline_ns, std::move(live), state);
        });
  }
  for (ClientState& c : clients) c.thread.join();
  if (probe_thread.joinable()) {
    probe_stop.store(true, std::memory_order_release);
    probe_thread.join();
  }
  double elapsed_s =
      static_cast<double>(MonotonicNanos() - start_ns) / 1e9;

  // -- Aggregate -------------------------------------------------------------
  OpStats insert_stats, read_stats, delete_stats, range_stats;
  int64_t inserts = 0, reads = 0, deletes = 0, range_deletes = 0;
  int64_t rows_deleted = 0, errors = 0;
  std::string first_error;
  for (ClientState& c : clients) {
    insert_stats.Merge(c.insert_ns, c.insert_max, 0);
    read_stats.Merge(c.read_ns, c.read_max, 0);
    delete_stats.Merge(c.delete_ns, c.delete_max, 0);
    range_stats.Merge(c.range_ns, c.range_max, 0);
    inserts += c.inserts;
    reads += c.reads;
    deletes += c.deletes;
    range_deletes += c.range_deletes;
    rows_deleted += c.rows_deleted;
    errors += c.errors;
    if (first_error.empty()) first_error = c.first_error;
  }
  int64_t total_ops = inserts + reads + deletes + range_deletes;

  // -- Consistency check: acked effects must all be visible ------------------
  int exit_code = 0;
  if (errors > 0) {
    std::fprintf(stderr, "%lld statement error(s); first: %s\n",
                 static_cast<long long>(errors), first_error.c_str());
    exit_code = 1;
  }
  int64_t expected_rows = cfg.preload + inserts - rows_deleted;
  Result<std::string> count = boot->Execute("SELECT COUNT(*) FROM R");
  if (!count.ok()) {
    std::fprintf(stderr, "final count: %s\n",
                 count.status().ToString().c_str());
    exit_code = 1;
  } else if (*count != "count = " + std::to_string(expected_rows)) {
    std::fprintf(stderr,
                 "row count mismatch: got \"%s\", expected %lld "
                 "(preload %lld + inserts %lld - deleted %lld)\n",
                 count->c_str(), static_cast<long long>(expected_rows),
                 static_cast<long long>(cfg.preload),
                 static_cast<long long>(inserts),
                 static_cast<long long>(rows_deleted));
    exit_code = 1;
  }
  boot->Close();

  std::string metrics_json = "{}";
  int64_t slow_queries = 0;
  int metrics_port = 0;
  if (spawn) {
    slow_queries = static_cast<int64_t>(server->slow_queries_logged());
    metrics_port = server->metrics_port();
    Status stopped = server->Stop();
    if (!stopped.ok()) {
      std::fprintf(stderr, "Stop: %s\n", stopped.ToString().c_str());
      exit_code = 1;
    }
    Status integrity = db->VerifyIntegrity();
    if (!integrity.ok()) {
      std::fprintf(stderr, "VerifyIntegrity: %s\n",
                   integrity.ToString().c_str());
      exit_code = 1;
    }
    bulkdel::obs::MetricsSnapshot delta = db->metrics().Snapshot() - before;
    metrics_json = "{";
    bool first = true;
    for (const char* name :
         {"wal.syncs", "wal.fsyncs", "disk.syncs", "sidefile.appends",
          "net.accepted", "net.rejected", "net.bytes_in", "net.bytes_out"}) {
      if (!first) metrics_json += ", ";
      first = false;
      bulkdel::json::AppendEscaped(&metrics_json, name);
      metrics_json += ": " + std::to_string(delta.CounterOr(name));
    }
    for (const char* name :
         {"net.req_ns", "sched.queue_depth", "bp.fetch_ns"}) {
      const bulkdel::obs::HistogramSnapshot* h = delta.FindHistogram(name);
      if (h == nullptr) continue;
      metrics_json += ", ";
      bulkdel::json::AppendEscaped(&metrics_json, name);
      metrics_json += ": {\"count\": " + std::to_string(h->count) +
                      ", \"p50\": " + std::to_string(h->ApproxQuantile(0.5)) +
                      ", \"p99\": " + std::to_string(h->ApproxQuantile(0.99)) +
                      ", \"p999\": " +
                      std::to_string(h->ApproxQuantile(0.999)) + "}";
    }
    metrics_json += "}";
    Status closed = db->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "Close: %s\n", closed.ToString().c_str());
      exit_code = 1;
    }
  }

  // -- Report ----------------------------------------------------------------
  char rate_buf[64];
  std::snprintf(rate_buf, sizeof(rate_buf), "%.1f",
                elapsed_s > 0 ? static_cast<double>(total_ops) / elapsed_s
                              : 0.0);
  std::string summary = "{\"tool\": \"bulkdel_loadgen\", \"backend\": ";
  bulkdel::json::AppendEscaped(&summary, cfg.backend);
  summary += ", \"protocol\": ";
  bulkdel::json::AppendEscaped(&summary, cfg.protocol);
  summary += ", \"clients\": " + std::to_string(cfg.clients);
  char sec_buf[64];
  std::snprintf(sec_buf, sizeof(sec_buf), "%.3f", elapsed_s);
  summary += std::string(", \"elapsed_s\": ") + sec_buf;
  summary += ", \"seed\": " + std::to_string(cfg.seed);
  summary += ", \"mix\": ";
  bulkdel::json::AppendEscaped(
      &summary, std::to_string(cfg.mix_insert) + ":" +
                    std::to_string(cfg.mix_read) + ":" +
                    std::to_string(cfg.mix_delete) + ":" +
                    std::to_string(cfg.mix_range));
  summary += ", \"bulk_batch\": " + std::to_string(cfg.bulk_batch);
  summary += ", \"preload\": " + std::to_string(cfg.preload);
  summary += ", \"total_ops\": " + std::to_string(total_ops);
  summary += std::string(", \"total_ops_per_sec\": ") + rate_buf;
  summary += ", \"rows_deleted\": " + std::to_string(rows_deleted);
  summary += ", \"errors\": " + std::to_string(errors);
  summary += ", \"op_classes\": {";
  AppendOpJson(&summary, "insert", insert_stats, elapsed_s);
  summary += ", ";
  AppendOpJson(&summary, "point_read", read_stats, elapsed_s);
  summary += ", ";
  AppendOpJson(&summary, "bulk_delete", delete_stats, elapsed_s);
  summary += ", ";
  AppendOpJson(&summary, "range_delete", range_stats, elapsed_s);
  summary += "}, \"metrics\": " + metrics_json;
  summary += ", \"metrics_port\": " + std::to_string(metrics_port);
  summary += ", \"slow_queries\": " + std::to_string(slow_queries);
  if (cfg.probe_ms > 0) {
    summary += ", \"probe\": {\"scrapes\": " + std::to_string(probe.scrapes) +
               ", \"errors\": " + std::to_string(probe.errors) +
               ", \"saw_inflight_delete\": " +
               (probe.saw_inflight_delete ? "true" : "false") +
               ", \"phase_seen\": ";
    bulkdel::json::AppendEscaped(&summary, probe.phase_seen);
    summary += "}";
  }
  summary += "}";

  std::printf("%s\n", summary.c_str());
  if (!cfg.json_out.empty()) {
    std::ofstream out(cfg.json_out, std::ios::trunc);
    out << summary << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "failed writing %s\n", cfg.json_out.c_str());
      exit_code = 1;
    }
  }
  return exit_code;
}

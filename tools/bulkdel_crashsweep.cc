// Command-line driver for the crash-recovery sweep (docs/FAULTS.md).
//
// Default: the full deterministic sweep — every strategy, exec_threads 1
// and 4, every known fault site, sampled occurrences.
//
//   bulkdel_crashsweep                         # sampled sweep
//   bulkdel_crashsweep --exhaustive            # every single occurrence
//   bulkdel_crashsweep --site=exec.finalize --occurrence=1 --threads=4 \
//       --strategy=vertical-hash               # reproduce one case
//   bulkdel_crashsweep --torture --seconds=120 --seed=42   # randomized
//
// Exit status: 0 iff every case passed.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fault/crash_sweep.h"
#include "fault/fault_injector.h"
#include "plan/plan.h"

namespace {

using bulkdel::FaultInjector;
using bulkdel::Strategy;

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

bool ParseStrategy(const std::string& name, Strategy* out) {
  static const Strategy kAll[] = {
      Strategy::kTraditional,      Strategy::kTraditionalSorted,
      Strategy::kDropCreate,       Strategy::kVerticalSortMerge,
      Strategy::kVerticalHash,     Strategy::kVerticalPartitionedHash,
      Strategy::kOptimizer,
  };
  for (Strategy s : kAll) {
    if (name == bulkdel::StrategyName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --site=NAME          restrict to one fault site (see --list-sites)\n"
      "  --occurrence=N       restrict to the N-th hit of the site\n"
      "  --mode=crash|torn    restrict the fault mode\n"
      "  --strategy=NAME      restrict to one strategy (default: all vertical)\n"
      "  --threads=N          restrict to one exec_threads value (default 1,4)\n"
      "  --occurrences-per-site=N  sample budget per site (default 6)\n"
      "  --exhaustive         test every occurrence of every site\n"
      "  --concurrency=none|sidefile|direct   §3.1 updater protocol\n"
      "  --backend=sim|file   durability backend (default sim)\n"
      "  --predicate=keys|range   statement predicate class (default keys)\n"
      "  --cascade            sweep the multi-table cascade statement\n"
      "                       (USERS->ORDERS->EVENTS; leg-prefix acceptance)\n"
      "  --dir=PATH           scratch dir for --backend=file\n"
      "  --updater-ops=N      concurrent-updater DML ops per case (default 6)\n"
      "  --tuples=N --fraction=F --memory=BYTES   workload shape\n"
      "  --workload-seed=N --keys-seed=N --injector-seed=N\n"
      "  --torture --seconds=N --seed=N   randomized time-bounded mode\n"
      "  --verbose            one line per case\n"
      "  --list-sites         print the known sites and exit\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bulkdel::SweepConfig config;
  bool torture = false;
  int seconds = 60;
  uint64_t torture_seed = 1;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--list-sites") == 0) {
      for (const bulkdel::FaultSiteInfo& site : FaultInjector::KnownSites()) {
        std::printf("%s%s\n", site.name,
                    site.supports_write_modes ? " (torn/short modes)" : "");
      }
      return 0;
    } else if (std::strcmp(argv[i], "--exhaustive") == 0) {
      config.occurrences_per_site = 0;
    } else if (std::strcmp(argv[i], "--torture") == 0) {
      torture = true;
    } else if (std::strcmp(argv[i], "--cascade") == 0) {
      config.cascade = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      config.verbose = true;
    } else if (ParseFlag(argv[i], "site", &value)) {
      if (!FaultInjector::IsKnownSite(value)) {
        std::fprintf(stderr, "unknown fault site '%s' (try --list-sites)\n",
                     value.c_str());
        return 2;
      }
      config.only_site = value;
    } else if (ParseFlag(argv[i], "occurrence", &value)) {
      config.only_occurrence = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "mode", &value)) {
      if (value != "crash" && value != "torn" && value != "short") {
        std::fprintf(stderr, "bad --mode '%s'\n", value.c_str());
        return 2;
      }
      config.only_mode = value;
    } else if (ParseFlag(argv[i], "strategy", &value)) {
      Strategy s;
      if (!ParseStrategy(value, &s)) {
        std::fprintf(stderr, "unknown strategy '%s'\n", value.c_str());
        return 2;
      }
      config.strategies = {s};
    } else if (ParseFlag(argv[i], "threads", &value)) {
      config.thread_counts = {std::atoi(value.c_str())};
    } else if (ParseFlag(argv[i], "concurrency", &value)) {
      if (value == "none") {
        config.concurrency = bulkdel::ConcurrencyProtocol::kNone;
      } else if (value == "sidefile") {
        config.concurrency = bulkdel::ConcurrencyProtocol::kSideFile;
      } else if (value == "direct") {
        config.concurrency = bulkdel::ConcurrencyProtocol::kDirectPropagation;
      } else {
        std::fprintf(stderr, "bad --concurrency '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(argv[i], "backend", &value)) {
      if (value != "sim" && value != "file") {
        std::fprintf(stderr, "bad --backend '%s' (sim|file)\n", value.c_str());
        return 2;
      }
      config.backend = value;
    } else if (ParseFlag(argv[i], "dir", &value)) {
      config.scratch_dir = value;
    } else if (ParseFlag(argv[i], "predicate", &value)) {
      if (value != "keys" && value != "range") {
        std::fprintf(stderr, "bad --predicate '%s' (keys|range)\n",
                     value.c_str());
        return 2;
      }
      config.predicate = value;
    } else if (ParseFlag(argv[i], "updater-ops", &value)) {
      config.updater_ops = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "occurrences-per-site", &value)) {
      config.occurrences_per_site = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "tuples", &value)) {
      config.n_tuples = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "fraction", &value)) {
      config.delete_fraction = std::atof(value.c_str());
    } else if (ParseFlag(argv[i], "memory", &value)) {
      config.memory_budget_bytes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "workload-seed", &value)) {
      config.workload_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "keys-seed", &value)) {
      config.delete_keys_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "injector-seed", &value)) {
      config.injector_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "seconds", &value)) {
      seconds = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "seed", &value)) {
      torture_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      return Usage(argv[0]);
    }
  }

  bulkdel::SweepStats stats;
  bulkdel::Status status =
      torture ? bulkdel::RunTortureSweep(config, seconds, torture_seed, &stats)
              : bulkdel::RunCrashSweep(config, &stats);
  if (!status.ok()) {
    std::fprintf(stderr, "sweep harness error: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("crash sweep: %s\n", stats.Summary().c_str());
  return stats.failures == 0 ? 0 : 1;
}

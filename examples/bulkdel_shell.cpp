// Interactive shell over the SQL statement layer. Run it and type
// statements, or pipe a script:
//
//   printf 'CREATE TABLE R (A INT, B INT, PAD CHAR(48));\n...' \
//     | build/examples/bulkdel_shell
//
// With no stdin input, a small built-in demo script runs instead, so the
// binary is self-demonstrating.

#include <cstdio>
#include <iostream>
#include <string>
#include <unistd.h>

#include "core/database.h"
#include "core/sql.h"

using namespace bulkdel;

namespace {
const char* kDemoScript[] = {
    "CREATE TABLE R (A INT, B INT, C INT, PAD CHAR(40))",
    "CREATE UNIQUE INDEX ON R (A)",
    "CREATE INDEX ON R (B) PRIORITY 1",
    "CREATE INDEX ON R (C)",
    "INSERT INTO R VALUES (1, 10, 100)",
    "INSERT INTO R VALUES (2, 20, 200)",
    "INSERT INTO R VALUES (3, 30, 300)",
    "INSERT INTO R VALUES (4, 40, 400)",
    "SELECT COUNT(*) FROM R",
    "EXPLAIN DELETE FROM R WHERE A IN (1, 3)",
    "DELETE FROM R WHERE A IN (1, 3)",
    "SELECT COUNT(*) FROM R",
    "SELECT COUNT(*) FROM R WHERE B BETWEEN 15 AND 45",
};
}  // namespace

int main() {
  DatabaseOptions options;
  options.memory_budget_bytes = 1 << 20;
  auto db_or = Database::Create(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "create: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();

  bool interactive = isatty(STDIN_FILENO);
  bool piped_input = !interactive && std::cin.peek() != EOF;

  auto run = [&](const std::string& line) {
    if (line.empty()) return;
    auto result = ExecuteStatement(db.get(), line);
    if (result.ok()) {
      std::printf("%s\n", result->c_str());
    } else {
      std::printf("error: %s\n", result.status().ToString().c_str());
    }
  };

  if (!interactive && !piped_input) {
    std::printf("bulkdel shell — demo script (pipe SQL on stdin to drive)\n");
    for (const char* statement : kDemoScript) {
      std::printf("sql> %s\n", statement);
      run(statement);
    }
    return 0;
  }

  if (interactive) {
    std::printf(
        "bulkdel shell. Statements: CREATE TABLE/INDEX, INSERT, SELECT "
        "COUNT(*), EXPLAIN DELETE, DELETE.\nCtrl-D to exit.\n");
  }
  std::string line;
  while (true) {
    if (interactive) std::printf("sql> ");
    if (!std::getline(std::cin, line)) break;
    run(line);
  }
  return 0;
}

// §3.2 in action: a checkpointed bulk delete is interrupted by a crash in
// the middle of the table phase. On restart, recovery analyzes the durable
// log, finds the interrupted statement, and rolls it *forward* from the last
// checkpoint (the paper's design: finish the bulk deletion instead of
// rolling it back), using the materialized delete lists and the WAL.

#include <cstdio>

#include "core/database.h"
#include "util/random.h"

using namespace bulkdel;

int main() {
  DatabaseOptions options;
  options.memory_budget_bytes = 512 * 1024;
  options.enable_recovery_log = true;
  auto db = Database::Create(options).TakeValue();

  Schema schema = Schema::PaperStyle(3, 128).value();
  if (!db->CreateTable("R", schema).ok()) return 1;
  if (!db->CreateIndex("R", "A", {.unique = true}).ok()) return 1;
  if (!db->CreateIndex("R", "B").ok()) return 1;
  if (!db->CreateIndex("R", "C").ok()) return 1;

  Random rng(11);
  for (int64_t i = 0; i < 20000; ++i) {
    if (!db->InsertRow("R", {i, static_cast<int64_t>(rng.Next() >> 20),
                             static_cast<int64_t>(rng.Next() >> 20)})
             .ok()) {
      return 1;
    }
  }
  // Make the load durable (the recovery log covers bulk deletes; loads are
  // made durable by checkpoints).
  if (!db->Checkpoint().ok()) return 1;
  std::printf("loaded and checkpointed %llu rows\n",
              static_cast<unsigned long long>(
                  db->GetTable("R")->table->tuple_count()));

  BulkDeleteSpec spec;
  spec.table = "R";
  spec.key_column = "A";
  for (int64_t k = 0; k < 20000; k += 4) spec.keys.push_back(k);

  // Inject a crash when the executor reaches the table phase: the key index
  // has already been processed and checkpointed, the table has not.
  db->SetCrashPoint("table");
  auto crashed = db->BulkDelete(spec, Strategy::kVerticalSortMerge);
  std::printf("\nbulk delete interrupted: %s\n",
              crashed.status().ToString().c_str());
  std::printf("durable log records at crash: %zu\n",
              db->log().durable_size());

  // "Power-cycle": buffer pool contents and the un-synced log tail vanish;
  // the database restarts from disk and recovery finishes the statement.
  Status recovered = db->SimulateCrashAndRecover();
  std::printf("restart + roll-forward recovery: %s\n",
              recovered.ToString().c_str());
  if (!recovered.ok()) return 1;

  uint64_t remaining = db->GetTable("R")->table->tuple_count();
  std::printf("rows remaining: %llu (expected %llu)\n",
              static_cast<unsigned long long>(remaining),
              static_cast<unsigned long long>(20000 - spec.keys.size()));
  Status integrity = db->VerifyIntegrity();
  std::printf("integrity: %s\n", integrity.ToString().c_str());
  std::printf("log truncated to %zu records\n", db->log().durable_size());
  return integrity.ok() && remaining == 20000 - spec.keys.size() ? 0 : 1;
}

// The paper's future work (§5), demonstrated: bulk deletes from the three
// other index families it names — a hash table, an R-tree and a grid file.
// The common principle: adapt the delete list to the structure's physical
// layout (bucket partitioning / one DFS pass by RID / cell partitioning)
// instead of probing root-to-bucket once per record.

#include <cstdio>
#include <tuple>
#include <vector>

#include "gridfile/grid_file.h"
#include "hashidx/hash_index.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "util/random.h"

using namespace bulkdel;

namespace {
constexpr int kN = 30000;
constexpr double kFraction = 0.15;

double SimMinutes(const IoStats& io) {
  return static_cast<double>(io.simulated_micros) / 60e6;
}
}  // namespace

int main() {
  Random rng(99);

  // --- Hash index -----------------------------------------------------------
  {
    DiskManager disk;
    BufferPool pool(&disk, 1 << 20);
    auto index = HashIndex::Create(&pool).TakeValue();
    std::vector<int64_t> keys;
    for (int64_t i = 0; i < kN; ++i) {
      int64_t k = i * 8 + static_cast<int64_t>(rng.Uniform(8));
      keys.push_back(k);
      if (!index.Insert(k, Rid(static_cast<PageId>(i + 1), 0)).ok()) return 1;
    }
    std::vector<int64_t> doomed(keys.begin(),
                                keys.begin() + static_cast<int>(kN * kFraction));
    disk.ResetStats();
    HashBulkDeleteStats stats;
    if (!index.BulkDeleteKeys(doomed, &stats).ok()) return 1;
    if (!pool.FlushAll().ok()) return 1;
    std::printf(
        "hash index : deleted %llu of %d entries touching %llu bucket "
        "chains — %.2f simulated min\n",
        static_cast<unsigned long long>(stats.entries_deleted), kN,
        static_cast<unsigned long long>(stats.buckets_visited),
        SimMinutes(disk.stats()));
    if (!index.CheckInvariants().ok()) return 1;
  }

  // --- R-tree ---------------------------------------------------------------
  {
    DiskManager disk;
    BufferPool pool(&disk, 1 << 20);
    auto tree = RTree::Create(&pool).TakeValue();
    std::vector<Rid> rids;
    for (int64_t i = 0; i < kN; ++i) {
      int64_t x = rng.UniformInt(0, 1000000);
      int64_t y = rng.UniformInt(0, 1000000);
      Rid rid(static_cast<PageId>(i + 1), 0);
      rids.push_back(rid);
      if (!tree.Insert(Rect{x, y, x + 10, y + 10}, rid).ok()) return 1;
    }
    std::vector<Rid> doomed(rids.begin(),
                            rids.begin() + static_cast<int>(kN * kFraction));
    disk.ResetStats();
    RtreeBulkDeleteStats stats;
    if (!tree.BulkDeleteByRids(doomed, &stats).ok()) return 1;
    if (!pool.FlushAll().ok()) return 1;
    std::printf(
        "r-tree     : deleted %llu of %d entries in one DFS pass "
        "(%llu leaves, %llu inner) — %.2f simulated min\n",
        static_cast<unsigned long long>(stats.entries_deleted), kN,
        static_cast<unsigned long long>(stats.leaves_visited),
        static_cast<unsigned long long>(stats.inner_visited),
        SimMinutes(disk.stats()));
    if (!tree.CheckInvariants().ok()) return 1;
  }

  // --- Grid file --------------------------------------------------------------
  {
    DiskManager disk;
    BufferPool pool(&disk, 1 << 20);
    auto grid = GridFile::Create(&pool).TakeValue();
    std::vector<std::tuple<int64_t, int64_t, Rid>> entries;
    for (int64_t i = 0; i < kN; ++i) {
      int64_t x = rng.UniformInt(0, GridFile::kDomain - 1);
      int64_t y = rng.UniformInt(0, GridFile::kDomain - 1);
      Rid rid(static_cast<PageId>(i + 1), 0);
      entries.emplace_back(x, y, rid);
      if (!grid.Insert(x, y, rid).ok()) return 1;
    }
    std::vector<std::tuple<int64_t, int64_t, Rid>> doomed(
        entries.begin(), entries.begin() + static_cast<int>(kN * kFraction));
    disk.ResetStats();
    GridBulkDeleteStats stats;
    if (!grid.BulkDelete(doomed, &stats).ok()) return 1;
    if (!pool.FlushAll().ok()) return 1;
    std::printf(
        "grid file  : deleted %llu of %d entries touching %llu bucket "
        "chains — %.2f simulated min\n",
        static_cast<unsigned long long>(stats.entries_deleted), kN,
        static_cast<unsigned long long>(stats.buckets_visited),
        SimMinutes(disk.stats()));
    if (!grid.CheckInvariants().ok()) return 1;
  }

  std::printf("\nall three structures verified after the bulk deletes.\n");
  return 0;
}

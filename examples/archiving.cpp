// The paper's motivating scenario (§1): archiving. Step 1 extracts the data
// to archive ("all orders processed more than three months ago") and writes
// it to an archive file; step 2 — the subject of the paper — bulk deletes
// those rows from the database.
//
// ORDERS(order_id, order_date, ship_date, amount, PAD) with indices on
// order_id (unique key), order_date and ship_date. Note the paper's point
// about partitioning: deletes sometimes go by order_date, sometimes by
// ship_date, so no single physical partitioning can serve both — bulk
// delete operators can.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/database.h"
#include "exec/delete_list.h"
#include "util/random.h"

using namespace bulkdel;

namespace {
constexpr int64_t kDay = 86400;

int RunArchive(Database* db, const std::string& date_column, int64_t cutoff,
               const std::string& archive_path) {
  TableDef* orders = db->GetTable("ORDERS");

  // Step 1 of archiving: the extraction query. With an index on the date
  // column this is an index range scan producing the keys to delete.
  auto* date_index = db->GetIndex("ORDERS", date_column);
  std::vector<int64_t> doomed_ids;
  std::vector<Rid> doomed_rids;
  Status s = date_index->tree->RangeScan(
      0, cutoff, [&](int64_t, const Rid& rid) {
        doomed_rids.push_back(rid);
        return Status::OK();
      });
  if (!s.ok()) return 1;

  // Write the archive (and collect the delete keys).
  FILE* archive = std::fopen(archive_path.c_str(), "w");
  if (archive == nullptr) return 1;
  std::vector<char> tuple(orders->schema->tuple_size());
  for (const Rid& rid : doomed_rids) {
    if (!orders->table->Get(rid, tuple.data()).ok()) continue;
    int64_t id = orders->schema->GetInt(tuple.data(), 0);
    doomed_ids.push_back(id);
    std::fprintf(archive, "%lld,%lld,%lld,%lld\n",
                 static_cast<long long>(id),
                 static_cast<long long>(orders->schema->GetInt(tuple.data(), 1)),
                 static_cast<long long>(orders->schema->GetInt(tuple.data(), 2)),
                 static_cast<long long>(orders->schema->GetInt(tuple.data(), 3)));
  }
  std::fclose(archive);
  std::printf("archived %zu orders (by %s <= day %lld) to %s\n",
              doomed_ids.size(), date_column.c_str(),
              static_cast<long long>(cutoff / kDay), archive_path.c_str());

  // Step 2: the bulk delete, via the cost-based planner.
  BulkDeleteSpec spec;
  spec.table = "ORDERS";
  spec.key_column = "order_id";
  spec.keys = std::move(doomed_ids);
  auto report = db->BulkDelete(spec, Strategy::kOptimizer);
  if (!report.ok()) {
    std::fprintf(stderr, "bulk delete: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("bulk delete (%s): %llu rows in %.1f simulated seconds "
              "(plan: %s)\n\n",
              date_column.c_str(),
              static_cast<unsigned long long>(report->rows_deleted),
              report->simulated_seconds(),
              StrategyName(report->strategy_used));
  return 0;
}
}  // namespace

int main() {
  DatabaseOptions options;
  options.memory_budget_bytes = 1 << 20;
  auto db = Database::Create(options).TakeValue();

  std::vector<Column> columns = {
      Column::Int64("order_id"),   Column::Int64("order_date"),
      Column::Int64("ship_date"),  Column::Int64("amount"),
      Column::FixedBytes("PAD", 96),
  };
  Schema schema{columns};
  if (!db->CreateTable("ORDERS", schema).ok()) return 1;
  if (!db->CreateIndex("ORDERS", "order_id", {.unique = true}).ok()) return 1;
  if (!db->CreateIndex("ORDERS", "order_date").ok()) return 1;
  if (!db->CreateIndex("ORDERS", "ship_date").ok()) return 1;

  // A year of orders, ~80 per day; shipping lags ordering by 0-14 days.
  Random rng(7);
  for (int64_t id = 0; id < 30000; ++id) {
    int64_t order_day = static_cast<int64_t>(rng.Uniform(365));
    int64_t ship_day = order_day + static_cast<int64_t>(rng.Uniform(15));
    auto rid = db->InsertRow(
        "ORDERS", {id, order_day * kDay, ship_day * kDay,
                   static_cast<int64_t>(rng.Uniform(100000))});
    if (!rid.ok()) return 1;
  }
  std::printf("loaded %llu orders\n\n",
              static_cast<unsigned long long>(
                  db->GetTable("ORDERS")->table->tuple_count()));

  // First archiving run deletes by order_date, the second by ship_date —
  // two different dimensions over the same table.
  std::string dir = "/tmp";
  if (const char* env = std::getenv("TMPDIR")) dir = env;
  if (RunArchive(db.get(), "order_date", 90 * kDay,
                 dir + "/orders_by_order_date.csv") != 0) {
    return 1;
  }
  if (RunArchive(db.get(), "ship_date", 180 * kDay,
                 dir + "/orders_by_ship_date.csv") != 0) {
    return 1;
  }

  Status integrity = db->VerifyIntegrity();
  std::printf("integrity: %s, %llu orders remain\n",
              integrity.ToString().c_str(),
              static_cast<unsigned long long>(
                  db->GetTable("ORDERS")->table->tuple_count()));
  return integrity.ok() ? 0 : 1;
}

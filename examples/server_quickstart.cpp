// The smallest runnable network server (docs/SERVER.md): serve one shared
// database over TCP, drive it from two concurrent client connections, and
// shut down gracefully.
//
//   build/examples/server_quickstart            # self-contained demo
//   build/examples/server_quickstart --port=5433 --serve
//
// With --serve it stays up until stdin closes, so you can point
// `bulkdel_loadgen --connect=127.0.0.1:PORT` or your own client at it.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "core/database.h"
#include "net/client.h"
#include "net/server.h"

using namespace bulkdel;

int main(int argc, char** argv) {
  uint16_t port = 0;  // 0 = ephemeral; the kernel picks
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--port=", 7) == 0) {
      port = static_cast<uint16_t>(std::atoi(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    }
  }

  DatabaseOptions options;
  options.memory_budget_bytes = 4u << 20;
  options.enable_recovery_log = true;
  // Side-file admission: concurrent sessions' DML is admitted while a bulk
  // delete holds secondary indices off-line (§3.1, docs/CONCURRENCY.md).
  options.concurrency = ConcurrencyProtocol::kSideFile;
  auto db = Database::Create(options).TakeValue();

  net::ServerOptions server_options;
  server_options.port = port;
  server_options.logger = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
  };
  auto server = net::Server::Start(db.get(), server_options).TakeValue();
  std::printf("serving on 127.0.0.1:%u\n", server->port());

  if (serve) {
    // Stay up until stdin closes (Ctrl-D); Stop() drains in-flight work.
    std::getchar();
    return server->Stop().ok() ? 0 : 1;
  }

  // Demo: one session creates the schema, two sessions then write rows
  // concurrently and one runs a bulk delete while the other keeps inserting.
  auto setup = net::Client::Connect("127.0.0.1", server->port()).TakeValue();
  for (const char* ddl :
       {"CREATE TABLE R (A INT, B INT)", "CREATE UNIQUE INDEX ON R (A)",
        "CREATE INDEX ON R (B)"}) {
    auto r = setup.Execute(ddl);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", ddl, r.status().ToString().c_str());
      return 1;
    }
    std::printf("> %s\n< %s\n", ddl, r->c_str());
  }
  for (int64_t i = 0; i < 1000; ++i) {
    setup.Execute("INSERT INTO R VALUES (" + std::to_string(i) + ", " +
                  std::to_string(i % 13) + ")");
  }

  std::thread inserter([&server] {
    auto c = net::Client::Connect("127.0.0.1", server->port()).TakeValue();
    for (int64_t i = 1000; i < 1400; ++i) {
      auto r = c.Execute("INSERT INTO R VALUES (" + std::to_string(i) + ", " +
                         std::to_string(i % 13) + ")");
      if (!r.ok()) {
        std::fprintf(stderr, "insert: %s\n", r.status().ToString().c_str());
        return;
      }
    }
  });
  std::thread deleter([&server] {
    auto c = net::Client::Connect("127.0.0.1", server->port()).TakeValue();
    std::string statement = "DELETE FROM R WHERE A IN (";
    for (int64_t k = 0; k < 500; ++k) {
      statement += (k ? ", " : "") + std::to_string(k);
    }
    statement += ")";
    auto r = c.Execute(statement);
    std::printf("< %s\n", r.ok() ? r->c_str() : r.status().ToString().c_str());
  });
  inserter.join();
  deleter.join();

  auto count = setup.Execute("SELECT COUNT(*) FROM R");
  std::printf("< %s (expected count = 900)\n",
              count.ok() ? count->c_str() : count.status().ToString().c_str());
  if (!server->Stop().ok() || !db->VerifyIntegrity().ok()) return 1;
  return count.ok() && *count == "count = 900" ? 0 : 1;
}

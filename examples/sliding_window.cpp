// The paper's data-warehouse scenario (§1): a warehouse keeps a *window* of,
// say, the last six months of sales. Every period, the oldest period's rows
// are bulk deleted while new rows stream in. The sale_date index is created
// clustered (the fact table is loaded in date order), which is the paper's
// best case: the RID list needs no sort and the traditional approach gets
// competitive — the planner notices.

#include <cstdio>
#include <vector>

#include "core/database.h"
#include "exec/delete_list.h"
#include "util/random.h"

using namespace bulkdel;

int main() {
  DatabaseOptions options;
  options.memory_budget_bytes = 1 << 20;
  auto db = Database::Create(options).TakeValue();

  // SALES(sale_id, sale_date, store, amount, PAD); fact rows arrive in date
  // order, so the sale_date index is clustered.
  std::vector<Column> columns = {
      Column::Int64("sale_id"), Column::Int64("sale_date"),
      Column::Int64("store"),   Column::Int64("amount"),
      Column::FixedBytes("PAD", 64),
  };
  if (!db->CreateTable("SALES", Schema{columns}).ok()) return 1;
  if (!db->CreateIndex("SALES", "sale_date", {}, /*clustered=*/true).ok()) {
    return 1;
  }
  if (!db->CreateIndex("SALES", "sale_id", {.unique = true}).ok()) return 1;
  if (!db->CreateIndex("SALES", "store").ok()) return 1;

  constexpr int kWindowMonths = 6;
  constexpr int64_t kRowsPerMonth = 4000;
  Random rng(3);
  int64_t next_id = 0;

  auto load_month = [&](int64_t month) -> Status {
    for (int64_t i = 0; i < kRowsPerMonth; ++i) {
      // Dates ascend within the month, keeping the physical order.
      int64_t date = month * 1000000 + i;
      BULKDEL_RETURN_IF_ERROR(
          db->InsertRow("SALES",
                        {next_id++, date,
                         static_cast<int64_t>(rng.Uniform(50)),
                         static_cast<int64_t>(rng.Uniform(10000))})
              .status());
    }
    return Status::OK();
  };

  // Fill the initial window.
  for (int64_t month = 0; month < kWindowMonths; ++month) {
    if (!load_month(month).ok()) return 1;
  }
  std::printf("window filled: %llu rows over %d months\n",
              static_cast<unsigned long long>(
                  db->GetTable("SALES")->table->tuple_count()),
              kWindowMonths);

  // Slide the window six more months: load month m, delete month m-6.
  for (int64_t month = kWindowMonths; month < 2 * kWindowMonths; ++month) {
    if (!load_month(month).ok()) return 1;
    int64_t expired = month - kWindowMonths;

    // The delete list: sale_date keys of the expired month, via the
    // clustered index (a contiguous range of the leaf level).
    BulkDeleteSpec spec;
    spec.table = "SALES";
    spec.key_column = "sale_date";
    Status s = db->GetIndex("SALES", "sale_date")
                   ->tree->RangeScan(expired * 1000000,
                                     expired * 1000000 + 999999,
                                     [&](int64_t key, const Rid&) {
                                       spec.keys.push_back(key);
                                       return Status::OK();
                                     });
    if (!s.ok()) return 1;
    spec.keys_sorted = true;  // range scan yields them in order

    auto report = db->BulkDelete(spec, Strategy::kOptimizer);
    if (!report.ok()) {
      std::fprintf(stderr, "month %lld: %s\n", static_cast<long long>(month),
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "month %2lld: +%lld new rows, -%llu expired (%s, %.1f sim s), "
        "window now %llu rows\n",
        static_cast<long long>(month), static_cast<long long>(kRowsPerMonth),
        static_cast<unsigned long long>(report->rows_deleted),
        StrategyName(report->strategy_used), report->simulated_seconds(),
        static_cast<unsigned long long>(
            db->GetTable("SALES")->table->tuple_count()));
  }

  Status integrity = db->VerifyIntegrity();
  std::printf("integrity: %s\n", integrity.ToString().c_str());
  return integrity.ok() ? 0 : 1;
}

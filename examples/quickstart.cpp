// Quickstart: create a table with three indices, load it, run the paper's
//   DELETE FROM R WHERE R.A IN (SELECT D.A FROM D)
// with the cost-based planner, and inspect the plan and the report.

#include <cstdio>

#include "core/database.h"
#include "core/sql.h"
#include "util/random.h"

using namespace bulkdel;

int main() {
  // A database with a 1 MiB memory budget, in-memory paged storage, and the
  // simulated 2001-era disk for I/O accounting.
  DatabaseOptions options;
  options.memory_budget_bytes = 1 << 20;
  auto db_or = Database::Create(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "create: %s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();

  // R(A, B, C, PAD) with a unique key A and two secondary indices.
  Schema schema = Schema::PaperStyle(/*n_ints=*/3, /*tuple_size=*/128).value();
  if (!db->CreateTable("R", schema).ok()) return 1;
  if (!db->CreateIndex("R", "A", {.unique = true}).ok()) return 1;
  if (!db->CreateIndex("R", "B").ok()) return 1;
  if (!db->CreateIndex("R", "C").ok()) return 1;

  // Load 20,000 rows.
  Random rng(42);
  for (int64_t i = 0; i < 20000; ++i) {
    auto rid = db->InsertRow(
        "R", {i, static_cast<int64_t>(rng.Next() % 1000000),
              static_cast<int64_t>(rng.Next() % 1000000)});
    if (!rid.ok()) {
      std::fprintf(stderr, "insert: %s\n", rid.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("loaded %llu rows, index on A has height %d\n",
              static_cast<unsigned long long>(
                  db->GetTable("R")->table->tuple_count()),
              db->GetIndex("R", "A")->tree->height());

  // Delete 15% of the rows by key (this is "table D").
  BulkDeleteSpec spec;
  spec.table = "R";
  spec.key_column = "A";
  for (int64_t k = 0; k < 20000; k += 7) spec.keys.push_back(k);

  // Ask the optimizer what it would do...
  auto plan = db->ExplainBulkDelete(spec, Strategy::kOptimizer);
  if (!plan.ok()) return 1;
  std::printf("\n%s\n", plan->Explain().c_str());

  // ...and run it.
  auto report = db->BulkDelete(spec, Strategy::kOptimizer);
  if (!report.ok()) {
    std::fprintf(stderr, "bulk delete: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->ToString().c_str());

  // The same statement class also parses from SQL text.
  auto sql_report = ExecuteSql(
      db.get(), "DELETE FROM R WHERE A BETWEEN 10000 AND 10100");
  if (!sql_report.ok()) {
    std::fprintf(stderr, "sql: %s\n", sql_report.status().ToString().c_str());
    return 1;
  }
  std::printf("SQL range delete removed %llu more rows (%s)\n\n",
              static_cast<unsigned long long>(sql_report->rows_deleted),
              StrategyName(sql_report->strategy_used));

  // Compare against the traditional record-at-a-time execution on an
  // identically rebuilt database? For that, see bench/bench_fig7. Here we
  // just validate the end state.
  Status integrity = db->VerifyIntegrity();
  std::printf("integrity: %s\n", integrity.ToString().c_str());
  std::printf("rows remaining: %llu\n",
              static_cast<unsigned long long>(
                  db->GetTable("R")->table->tuple_count()));
  return integrity.ok() ? 0 : 1;
}

// §3.1 in action: a bulk delete with concurrent updater transactions. After
// the commit point (table + unique indices done), the table lock is released
// and updaters run against the database while the non-unique indices are
// still being processed off-line — here with the side-file protocol; switch
// to kDirectPropagation to see the other one.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/database.h"
#include "util/random.h"
#include "util/stopwatch.h"

using namespace bulkdel;

int main() {
  DatabaseOptions options;
  options.memory_budget_bytes = 1 << 20;
  options.concurrency = ConcurrencyProtocol::kSideFile;
  options.bulk_chunk_entries = 128;  // small latch windows: more interleaving
  auto db = Database::Create(options).TakeValue();

  Schema schema = Schema::PaperStyle(3, 128).value();
  if (!db->CreateTable("R", schema).ok()) return 1;
  if (!db->CreateIndex("R", "A", {.unique = true}).ok()) return 1;
  if (!db->CreateIndex("R", "B").ok()) return 1;
  if (!db->CreateIndex("R", "C").ok()) return 1;

  Random rng(5);
  for (int64_t i = 0; i < 30000; ++i) {
    if (!db->InsertRow("R", {i, static_cast<int64_t>(rng.Next() >> 20),
                             static_cast<int64_t>(rng.Next() >> 20)})
             .ok()) {
      return 1;
    }
  }

  BulkDeleteSpec spec;
  spec.table = "R";
  spec.key_column = "A";
  for (int64_t k = 0; k < 30000; k += 3) spec.keys.push_back(k);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> updates{0};
  std::vector<std::thread> updaters;
  for (int u = 0; u < 3; ++u) {
    updaters.emplace_back([&, u] {
      int64_t next = 1000000000LL + u * 10000000;
      while (!stop.load()) {
        // New business keeps arriving while old data is purged.
        auto rid = db->InsertRow("R", {next, next + 1, next + 2});
        if (rid.ok()) ++updates;
        ++next;
      }
    });
  }

  std::printf("bulk deleting %zu rows with %zu updater threads running...\n",
              spec.keys.size(), updaters.size());
  Stopwatch watch;
  auto report = db->BulkDelete(spec, Strategy::kVerticalSortMerge);
  double wall_ms = static_cast<double>(watch.ElapsedMicros()) / 1000.0;
  stop = true;
  for (std::thread& t : updaters) t.join();
  if (!report.ok()) {
    std::fprintf(stderr, "bulk delete: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("bulk delete removed %llu rows in %.1f ms wall time\n",
              static_cast<unsigned long long>(report->rows_deleted), wall_ms);
  std::printf("updaters completed %llu inserts concurrently\n",
              static_cast<unsigned long long>(updates.load()));
  for (auto& index : db->GetTable("R")->indices) {
    std::printf("  %s: %llu entries, mode=%s\n", index->name.c_str(),
                static_cast<unsigned long long>(index->tree->entry_count()),
                index->cc->mode.load() == IndexMode::kOnline ? "online"
                                                             : "OFFLINE?!");
  }

  Status integrity = db->VerifyIntegrity();
  std::printf("integrity: %s\n", integrity.ToString().c_str());
  return integrity.ok() ? 0 : 1;
}
